"""repro.obs — the observability layer over the PDES engine.

Cross-cutting instrumentation for the simulator itself (as opposed to
the *simulated machine*, which the statistics system covers):

* :class:`TelemetryRecorder` — JSONL metrics stream + run-manifest JSON
  for every :meth:`Simulation.run` / :meth:`ParallelSimulation.run`;
* :class:`HandlerProfiler` — per component/handler/event-type wall-time
  attribution with a sorted "hot components" report;
* :class:`ChromeTraceExporter` — handler spans and rank epochs as a
  Perfetto-loadable ``trace.json``;
* :class:`ProgressReporter` — periodic events/sec, sim-rate and ETA
  lines for long runs;
* :func:`build_manifest` / :func:`graph_hash` / :func:`append_json_record`
  — the machine-readable perf-record plumbing (also used by the
  benchmark harness for ``BENCH_<exp>.json`` records).

Everything attaches through the engine's observer dispatch
(:meth:`Simulation.add_trace_observer` / ``add_span_observer`` /
``add_heartbeat`` and :meth:`ParallelSimulation.add_epoch_observer`),
which costs a single ``is None`` check per event when nothing is
installed.  See ``docs/OBSERVABILITY.md`` for the schemas and usage.
"""

from .chrome_trace import ChromeTraceExporter
from .manifest import (MANIFEST_SCHEMA, append_json_record, build_manifest,
                       environment_info, graph_hash, write_manifest)
from .profiler import HandlerProfiler, ProfileRow, attribute_event
from .progress import ProgressReporter
from .telemetry import METRICS_SCHEMA, TelemetryRecorder

__all__ = [
    "ChromeTraceExporter",
    "HandlerProfiler",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "ProfileRow",
    "ProgressReporter",
    "TelemetryRecorder",
    "append_json_record",
    "attribute_event",
    "build_manifest",
    "environment_info",
    "graph_hash",
    "write_manifest",
]
