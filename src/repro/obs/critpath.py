"""Simulated critical-path analysis over causal shards.

Consumes the per-rank JSONL shards :mod:`repro.obs.causal` writes
(``<base>.causal.rank<k>``) and walks the causality DAG *backward* from
the run's last event (or from the latest event of a named component) to
produce the simulated critical path: the chain of events that bounded
the end time.  Along the path it attributes simulated latency to
component classes and reports the cross-rank *cut edges* the path
crossed, ranked by path weight — the feedback signal
``repro.core.partition`` consumers need to decide which links are too
hot to cut (ROADMAP item 1).

Node identity is ``(rank, seq)``; because per-rank event streams are
deterministic across backends (the determinism suite pins them), the
path reported for a processes run is identical to the serial backend's
for the same configuration.

CLI: ``python -m repro obs critpath <metrics> [--json out] [--top N]
[--component NAME]``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .causal import find_causal_shards

#: node id within the cross-rank causality DAG
NodeId = Tuple[int, int]  # (rank, seq)


class CausalAnalysisError(ValueError):
    """Raised when causal shards are missing or unusable."""


@dataclass
class CausalGraph:
    """The loaded causality DAG: nodes, cross-rank joins, link table."""

    base: Path
    #: (rank, seq) -> [time_ps, priority, cause_seq|None, comp_idx, evt_idx]
    nodes: Dict[NodeId, list] = field(default_factory=dict)
    #: (src_rank, send_seq) -> [cause_seq|None, link_id, deliver_ps, priority]
    sends: Dict[Tuple[int, int], list] = field(default_factory=dict)
    #: (rank, seq) -> (link_id, send_seq) for cross-rank arrivals
    recvs: Dict[NodeId, Tuple[int, int]] = field(default_factory=dict)
    #: link_id -> {name, latency_ps, rank_a, rank_b}
    links: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: per-rank interned [name, class] component table
    components: Dict[int, List[List[str]]] = field(default_factory=dict)
    #: per-rank interned event-class-name table
    events: Dict[int, List[str]] = field(default_factory=dict)
    ranks: List[int] = field(default_factory=list)

    def component_of(self, node: NodeId) -> Tuple[str, str]:
        """``(component name, component class)`` of a node."""
        rank, _seq = node
        comp_idx = self.nodes[node][3]
        table = self.components.get(rank, [])
        if 0 <= comp_idx < len(table):
            name, cls = table[comp_idx]
            return name, cls
        return "?", "?"

    def event_of(self, node: NodeId) -> str:
        rank, _seq = node
        evt_idx = self.nodes[node][4]
        table = self.events.get(rank, [])
        if 0 <= evt_idx < len(table):
            return table[evt_idx]
        return "?"


def load_causal(base: Union[str, Path]) -> CausalGraph:
    """Load every ``<base>.causal.rank*`` shard into one graph."""
    base = Path(base)
    shards = find_causal_shards(base)
    if not shards:
        raise CausalAnalysisError(
            f"no causal shards found at {base}.causal.rank* — "
            "was the run started with --trace-causal?")
    graph = CausalGraph(base=base)
    for rank, path in sorted(shards.items()):
        graph.ranks.append(rank)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail — keep what parsed
                kind = record.get("kind")
                if kind == "causal_nodes":
                    for row in record.get("rows", ()):
                        graph.nodes[(rank, row[0])] = row[1:]
                elif kind == "causal_send":
                    for row in record.get("rows", ()):
                        # row = [cause, link_id, send_seq, when, priority]
                        graph.sends[(rank, row[2])] = [row[0], row[1],
                                                       row[3], row[4]]
                elif kind == "causal_recv":
                    for row in record.get("rows", ()):
                        # row = [seq, link_id, send_seq, when, priority]
                        graph.recvs[(rank, row[0])] = (row[1], row[2])
                elif kind == "causal_start":
                    for link_id, info in record.get("links", {}).items():
                        graph.links[int(link_id)] = info
                elif kind == "causal_end":
                    graph.components[rank] = record.get("components", [])
                    graph.events[rank] = record.get("events", [])
    if not graph.nodes:
        raise CausalAnalysisError(
            f"causal shards at {base}.causal.rank* hold no event nodes")
    return graph


@dataclass
class CriticalPath:
    """One backward walk: the path, its attributions, its cut edges."""

    #: oldest-first path nodes (dicts; see ``_node_dict``)
    nodes: List[Dict[str, Any]]
    #: total simulated span covered by the path (ps)
    span_ps: int
    #: component-class -> {nodes, weight_ps} latency attribution
    by_class: Dict[str, Dict[str, Any]]
    #: cross-rank cut edges on the path, ranked by path weight
    cut_edges: List[Dict[str, Any]]
    #: how the end node was chosen ("run-end" or "component:<name>")
    anchor: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-critpath/1",
            "anchor": self.anchor,
            "span_ps": self.span_ps,
            "length": len(self.nodes),
            "by_class": self.by_class,
            "cut_edges": self.cut_edges,
            "path": self.nodes,
        }

    def render(self, top: Optional[int] = None) -> str:
        """Human-readable report (``obs critpath`` text output)."""
        lines: List[str] = []
        if not self.nodes:
            return "critical path: empty"
        head, tail = self.nodes[0], self.nodes[-1]
        lines.append(
            f"critical path ({self.anchor}): {len(self.nodes)} events, "
            f"span {self.span_ps} ps "
            f"(rank {head['rank']} seq {head['seq']} @{head['time_ps']} ps"
            f" -> rank {tail['rank']} seq {tail['seq']} @{tail['time_ps']} ps)")
        lines.append("")
        lines.append("latency by component class:")
        for cls, agg in sorted(self.by_class.items(),
                               key=lambda kv: (-kv[1]["weight_ps"], kv[0])):
            lines.append(f"  {cls:<28} {agg['nodes']:>6} events "
                         f"{agg['weight_ps']:>12} ps")
        lines.append("")
        if self.cut_edges:
            lines.append("cut edges (cross-rank hops on the path, "
                         "by path weight):")
            for edge in self.cut_edges:
                lines.append(
                    f"  {edge['name']:<40} rank{edge['rank_a']}<->"
                    f"rank{edge['rank_b']} {edge['crossings']:>4} crossings "
                    f"{edge['weight_ps']:>10} ps")
        else:
            lines.append("cut edges: none (path never crossed ranks)")
        lines.append("")
        shown = self.nodes if top is None else self.nodes[-top:]
        if len(shown) < len(self.nodes):
            lines.append(f"path (last {len(shown)} of {len(self.nodes)} "
                         "events, oldest first):")
        else:
            lines.append("path (oldest first):")
        for node in shown:
            marker = " <<cut>>" if node.get("via_link") is not None else ""
            lines.append(
                f"  @{node['time_ps']:>12} ps p{node['priority']:<3} "
                f"rank {node['rank']} seq {node['seq']:<8} "
                f"{node['component']} [{node['comp_class']}] "
                f"{node['event']}{marker}")
        return "\n".join(lines)


def _node_dict(graph: CausalGraph, node: NodeId,
               via_link: Optional[int]) -> Dict[str, Any]:
    time_ps, priority, cause, _comp, _evt = graph.nodes[node]
    name, cls = graph.component_of(node)
    return {
        "rank": node[0],
        "seq": node[1],
        "time_ps": time_ps,
        "priority": priority,
        "cause": cause,
        "component": name,
        "comp_class": cls,
        "event": graph.event_of(node),
        #: link id of the cross-rank hop that *produced* this node
        "via_link": via_link,
    }


def _pick_end(graph: CausalGraph,
              component: Optional[str]) -> Tuple[NodeId, str]:
    """The walk anchor: latest event overall, or of a named component.

    "Latest" orders on ``(time, priority, seq, rank)`` — all four are
    backend-independent, so serial and processes runs anchor on the
    same node.
    """
    best: Optional[NodeId] = None
    best_key = None
    for node, row in graph.nodes.items():
        if component is not None:
            if graph.component_of(node)[0] != component:
                continue
        key = (row[0], row[1], node[1], node[0])
        if best_key is None or key > best_key:
            best_key = key
            best = node
    if best is None:
        raise CausalAnalysisError(
            f"no captured events for component {component!r}")
    anchor = "run-end" if component is None else f"component:{component}"
    return best, anchor


def critical_path(graph: CausalGraph, *,
                  component: Optional[str] = None) -> CriticalPath:
    """Walk backward from the anchor to the root that caused it."""
    end, anchor = _pick_end(graph, component)
    chain: List[Tuple[NodeId, Optional[int]]] = []  # (node, via_link)
    seen = set()
    node: Optional[NodeId] = end
    via: Optional[int] = None
    while node is not None and node not in seen:
        seen.add(node)
        chain.append((node, via))
        rank, _seq = node
        cause = graph.nodes[node][2]
        if cause is not None and (rank, cause) in graph.nodes:
            node, via = (rank, cause), None
            continue
        # No local cause: either a root, or a stitched cross-rank arrival.
        recv = graph.recvs.get(node)
        node, via = None, None
        if recv is not None:
            link_id, send_seq = recv
            link = graph.links.get(link_id)
            if link is not None:
                src_rank = (link["rank_a"] if rank == link["rank_b"]
                            else link["rank_b"])
                send = graph.sends.get((src_rank, send_seq))
                if send is not None and send[0] is not None \
                        and (src_rank, send[0]) in graph.nodes:
                    node, via = (src_rank, send[0]), link_id
    chain.reverse()

    nodes = []
    for index, (nid, _via) in enumerate(chain):
        # via_link on a node = the cut edge taken to go FROM its parent
        # TO it; chain stored the hop on the parent during the backward
        # walk, so shift it forward by one.
        via_link = chain[index - 1][1] if index > 0 else None
        nodes.append(_node_dict(graph, nid, via_link))

    by_class: Dict[str, Dict[str, Any]] = {}
    cut_agg: Dict[int, Dict[str, Any]] = {}
    prev_time: Optional[int] = None
    for node in nodes:
        cls = node["comp_class"]
        agg = by_class.setdefault(cls, {"nodes": 0, "weight_ps": 0})
        agg["nodes"] += 1
        if prev_time is not None:
            dt = node["time_ps"] - prev_time
            agg["weight_ps"] += dt
            link_id = node["via_link"]
            if link_id is not None:
                link = graph.links.get(link_id, {})
                edge = cut_agg.setdefault(link_id, {
                    "link_id": link_id,
                    "name": link.get("name", f"link{link_id}"),
                    "latency_ps": link.get("latency_ps"),
                    "rank_a": link.get("rank_a"),
                    "rank_b": link.get("rank_b"),
                    "crossings": 0,
                    "weight_ps": 0,
                })
                edge["crossings"] += 1
                edge["weight_ps"] += dt
        prev_time = node["time_ps"]

    cut_edges = sorted(cut_agg.values(),
                       key=lambda e: (-e["weight_ps"], -e["crossings"],
                                      e["link_id"]))
    span = nodes[-1]["time_ps"] - nodes[0]["time_ps"] if nodes else 0
    return CriticalPath(nodes=nodes, span_ps=span, by_class=by_class,
                        cut_edges=cut_edges, anchor=anchor)


def analyze(base: Union[str, Path], *,
            component: Optional[str] = None) -> CriticalPath:
    """Load shards for ``base`` and compute the critical path."""
    return critical_path(load_causal(base), component=component)


def cut_edge_report(path: CriticalPath) -> List[Dict[str, Any]]:
    """The ranked cut-edge table alone (for partition consumers)."""
    return list(path.cut_edges)
