"""Cross-rank trace merge: per-rank telemetry shards → one Perfetto trace.

A ``--backend processes`` run with ``--metrics out.jsonl`` leaves
behind the parent stream plus one rank-local shard per worker
(``out.jsonl.rank<k>``, written by :mod:`repro.obs.rank_stream`).  Each
stream is self-consistent but none shows the whole run.  This module
stitches them into a single Chrome Trace Event file:

* **one lane (pid) per rank** — epoch-execution spans from the rank's
  own ``rank_epoch`` records (true worker-side wall windows, not the
  parent's estimate), per-component handler spans when the run recorded
  them, and a ``queued``/``events`` counter track from the heartbeat
  samples;
* **one sync lane** (pid = number of ranks) — the parent's view of the
  run: conservative-sync epoch windows (labelled with the simulated-time
  window and lookahead), the cross-rank exchange preceding each window,
  and per-rank barrier waits in the span args.

All rank streams stamp wall-clock fields with raw ``perf_counter``
readings (``mono_s``) — CLOCK_MONOTONIC is system-wide on Linux, so the
streams share a timebase; the merge subtracts the minimum ``mono_s``
seen anywhere so the merged trace starts at t=0.

Runs without shards (serial/threads backends, or shard-less pipe mode
where rank records land inline in the parent stream) still merge: rank
lanes are synthesized from the parent's ``per_rank_wall_s`` when no
rank-local epoch records exist.
"""

from __future__ import annotations

import json
import warnings
from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .chrome_trace import build_trace_dict, flow_pair

_RANK_KINDS = ("rank_start", "rank_epoch", "rank_sample", "span", "rank_end")


def load_stream(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load one JSONL telemetry stream, skipping unparseable lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def find_rank_shards(metrics_path: Union[str, Path]) -> Dict[int, Path]:
    """Per-rank shard files next to a metrics stream, keyed by rank."""
    base = Path(metrics_path)
    shards: Dict[int, Path] = {}
    for candidate in sorted(base.parent.glob(base.name + ".rank*")):
        suffix = candidate.name[len(base.name) + len(".rank"):]
        try:
            rank = int(suffix)
        except ValueError:
            continue
        shards[rank] = candidate
    return shards


class RunArtifacts:
    """Everything one run left on disk, loaded and split by origin.

    ``main`` is the parent stream (``run_start``/``sample``/``epoch``/
    ``run_end``); ``rank_records`` maps each rank to its rank-stream
    records, whether they came from a shard file or arrived inline over
    the pipes in shard-less mode.
    """

    def __init__(self, metrics_path: Union[str, Path]):
        self.metrics_path = Path(metrics_path)
        if not self.metrics_path.exists():
            raise FileNotFoundError(f"metrics stream not found: {metrics_path}")
        self.main: List[Dict[str, Any]] = []
        self.rank_records: Dict[int, List[Dict[str, Any]]] = {}
        for record in load_stream(self.metrics_path):
            if record.get("kind") in _RANK_KINDS:
                rank = int(record.get("rank", 0))
                self.rank_records.setdefault(rank, []).append(record)
            else:
                self.main.append(record)
        self.shards = find_rank_shards(self.metrics_path)
        for rank, shard in self.shards.items():
            self.rank_records.setdefault(rank, []).extend(load_stream(shard))
        # Degraded-run detection: a processes run that streamed rank
        # records should have a complete stream (ending in rank_end) for
        # every rank named by run_start.  A crashed or still-running
        # worker leaves a missing or truncated shard; merge the rest and
        # say so once, instead of failing (or silently lying about) the
        # whole merge.
        self.missing_ranks: List[int] = []
        self.truncated_ranks: List[int] = []
        if self.backend == "processes" and self.rank_records:
            expected = int(self.run_start.get("ranks", 0) or 0)
            for rank in range(expected):
                records = self.rank_records.get(rank)
                if not records:
                    self.missing_ranks.append(rank)
                elif not any(r.get("kind") == "rank_end" for r in records):
                    self.truncated_ranks.append(rank)
        if self.missing_ranks or self.truncated_ranks:
            parts = []
            if self.missing_ranks:
                parts.append("missing rank shard(s): "
                             + ", ".join(map(str, self.missing_ranks)))
            if self.truncated_ranks:
                parts.append("truncated rank shard(s) (no rank_end): "
                             + ", ".join(map(str, self.truncated_ranks)))
            warnings.warn(
                f"obs merge: {'; '.join(parts)} — merging the remaining "
                "ranks; affected lanes are marked in the trace",
                RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def run_start(self) -> Dict[str, Any]:
        for record in self.main:
            if record.get("kind") == "run_start":
                return record
        return {}

    @property
    def run_end(self) -> Optional[Dict[str, Any]]:
        for record in self.main:
            if record.get("kind") == "run_end":
                return record
        return None

    @property
    def epochs(self) -> List[Dict[str, Any]]:
        return [r for r in self.main if r.get("kind") == "epoch"]

    @property
    def num_ranks(self) -> int:
        start = self.run_start
        ranks = int(start.get("ranks", 0) or 0)
        if self.rank_records:
            ranks = max(ranks, max(self.rank_records) + 1)
        for epoch in self.epochs[:1]:
            ranks = max(ranks, len(epoch.get("per_rank_events") or []))
        return max(ranks, 1)

    @property
    def backend(self) -> str:
        return str(self.run_start.get("backend", "unknown"))

    @property
    def sync_info(self) -> Dict[str, Any]:
        info = self.run_start.get("sync")
        return dict(info) if isinstance(info, dict) else {}

    def time_zero(self) -> float:
        """Earliest monotonic stamp anywhere — the merged trace's t=0."""
        lowest: Optional[float] = None
        for records in [self.main, *self.rank_records.values()]:
            for record in records:
                mono = record.get("mono_s")
                if mono is None:
                    continue
                mono = float(mono)
                # rank_epoch/epoch stamps are window *starts* already;
                # span stamps are starts too, so min() is correct.
                if lowest is None or mono < lowest:
                    lowest = mono
        return lowest if lowest is not None else 0.0


def merge_trace(artifacts: RunArtifacts, *,
                flows: bool = False) -> Dict[str, Any]:
    """Build the merged Trace Event dict: rank lanes plus a sync lane.

    With ``flows`` enabled, cross-rank causal edges captured by
    ``--trace-causal`` (see :mod:`repro.obs.causal`) are rendered as
    Perfetto flow arrows between the rank epoch lanes.
    """
    num_ranks = artifacts.num_ranks
    t0 = artifacts.time_zero()
    events: List[Dict[str, Any]] = []
    tids: Dict[Tuple[int, str], int] = {}
    named: set = set()

    def us(mono: float) -> float:
        return (float(mono) - t0) * 1e6

    def tid(pid: int, label: str, pid_name: str) -> int:
        key = (pid, label)
        slot = tids.get(key)
        if slot is None:
            slot = len(tids) + 1
            tids[key] = slot
            if pid not in named:
                named.add(pid)
                events.append({"ph": "M", "name": "process_name",
                               "pid": pid, "tid": 0,
                               "args": {"name": pid_name}})
            events.append({"ph": "M", "name": "thread_name",
                           "pid": pid, "tid": slot,
                           "args": {"name": label}})
        return slot

    # ------------------------------------------------------------ ranks
    ranks_with_epochs: set = set()
    for rank in sorted(artifacts.rank_records):
        lane = f"rank {rank}"
        for record in artifacts.rank_records[rank]:
            kind = record.get("kind")
            if kind == "rank_epoch":
                ranks_with_epochs.add(rank)
                events.append({
                    "ph": "X",
                    "name": f"epoch {record.get('epoch')}",
                    "cat": "epoch",
                    "ts": us(record["mono_s"]),
                    "dur": float(record.get("wall_s", 0.0)) * 1e6,
                    "pid": rank,
                    "tid": tid(rank, "[engine] epochs", lane),
                    "args": {"events": record.get("events"),
                             "sent": record.get("sent"),
                             "window_end_ps": record.get("window_end_ps"),
                             "sim_ps": record.get("sim_ps")},
                })
            elif kind == "span":
                component = record.get("component", "<unknown>")
                events.append({
                    "ph": "X",
                    "name": f"{component}.{record.get('handler', '?')}",
                    "cat": record.get("event", "-"),
                    "ts": us(record["mono_s"]),
                    "dur": float(record.get("dur_us", 0.0)),
                    "pid": rank,
                    "tid": tid(rank, component, lane),
                    "args": {"sim_ps": record.get("sim_ps")},
                })
            elif kind == "rank_sample":
                tid(rank, "[engine] epochs", lane)  # ensure pid named
                events.append({
                    "ph": "C",
                    "name": "engine",
                    "ts": us(record["mono_s"]),
                    "pid": rank,
                    "tid": 0,
                    "args": {"queued": record.get("queued", 0)},
                })

    # Ranks with no rank-local epoch records (serial/threads backends,
    # missing shard): synthesize their epoch lane from the parent's
    # per-rank walls so every rank still gets a lane.
    parent_epochs = artifacts.epochs
    for rank in range(num_ranks):
        if rank in ranks_with_epochs:
            continue
        lane = f"rank {rank}"
        for epoch in parent_epochs:
            mono = epoch.get("mono_s")
            walls = epoch.get("per_rank_wall_s") or []
            if mono is None or rank >= len(walls):
                continue
            window = epoch.get("window_ps") or [None, None]
            epoch_wall = float(epoch.get("epoch_wall_s", 0.0))
            events.append({
                "ph": "X",
                "name": f"epoch {epoch.get('epoch')}",
                "cat": "epoch",
                "ts": us(float(mono) - epoch_wall),
                "dur": float(walls[rank]) * 1e6,
                "pid": rank,
                "tid": tid(rank, "[engine] epochs (parent view)", lane),
                "args": {
                    "events": (epoch.get("per_rank_events") or [None] * num_ranks)[rank],
                    "window_ps": window,
                    "synthesized": True,
                },
            })

    # ------------------------------------------------------------- sync
    sync_pid = num_ranks
    sync_info = artifacts.sync_info
    lookahead = sync_info.get("lookahead_ps")
    strategy = sync_info.get("strategy", "sync")
    for epoch in parent_epochs:
        mono = epoch.get("mono_s")
        if mono is None:
            continue
        epoch_wall = float(epoch.get("epoch_wall_s", 0.0))
        exchange_s = float(epoch.get("exchange_s", 0.0))
        window = epoch.get("window_ps") or [None, None]
        start = float(mono) - epoch_wall
        barriers = epoch.get("per_rank_barrier_wait_s") or []
        events.append({
            "ph": "X",
            "name": f"epoch {epoch.get('epoch')} "
                    f"[{window[0]}-{window[1]}ps]",
            "cat": "sync",
            "ts": us(start),
            "dur": epoch_wall * 1e6,
            "pid": sync_pid,
            "tid": tid(sync_pid, f"[{strategy}] epoch windows", "sync"),
            "args": {
                "window_ps": window,
                "lookahead_ps": lookahead,
                "events": epoch.get("events"),
                "exchanged": epoch.get("exchanged"),
                "per_rank_barrier_wait_s": barriers,
                "max_barrier_wait_s": max(barriers) if barriers else 0.0,
            },
        })
        if exchange_s > 0.0:
            events.append({
                "ph": "X",
                "name": f"exchange ({epoch.get('exchanged', 0)} events)",
                "cat": "sync",
                "ts": us(start - exchange_s),
                "dur": exchange_s * 1e6,
                "pid": sync_pid,
                "tid": tid(sync_pid, "[sync] exchange", "sync"),
                "args": {"exchanged": epoch.get("exchanged")},
            })

    # Mark degraded lanes (missing/truncated shards) so the gap is
    # visible in the trace itself, not only in the merge warning.
    for label, ranks in (("shard missing", artifacts.missing_ranks),
                         ("shard truncated", artifacts.truncated_ranks)):
        for rank in ranks:
            events.append({
                "ph": "I", "s": "p",
                "name": f"rank {rank} {label} — lane incomplete",
                "cat": "merge",
                "ts": 0.0,
                "pid": rank,
                "tid": tid(rank, "[engine] epochs", f"rank {rank}"),
            })

    extra: Dict[str, Any] = {
        "metrics": str(artifacts.metrics_path),
        "backend": artifacts.backend,
        "ranks": num_ranks,
        "rank_shards": {str(r): str(p)
                        for r, p in sorted(artifacts.shards.items())},
        "sync": sync_info,
    }
    if artifacts.missing_ranks:
        extra["missing_rank_shards"] = list(artifacts.missing_ranks)
    if artifacts.truncated_ranks:
        extra["truncated_rank_shards"] = list(artifacts.truncated_ranks)
    if flows:
        flow_events, flow_note = _causal_flows(artifacts, us, tid)
        events.extend(flow_events)
        extra["causal_flows"] = flow_note

    events.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)))
    return build_trace_dict(events, exporter="repro.obs.merge", extra=extra)


#: flow arrows kept in a merged trace before truncation
_FLOW_LIMIT = 2000


def _causal_flows(artifacts: RunArtifacts, us, tid) -> Tuple[List[Dict[str, Any]],
                                                             Dict[str, Any]]:
    """Cross-rank causal edges as Perfetto flow ("s"/"f") event pairs.

    Each stitched send→recv edge becomes an arrow between the sender's
    and receiver's *epoch* slices: a rank's ``rank_epoch`` records map
    simulated time (``window_end_ps``) onto the wall-clock span of the
    epoch that executed it, and the arrow endpoints are pinned inside
    those spans so Perfetto binds them.  Ranks without ``rank_epoch``
    records (serial/threads backends) have no wall-clock anchor and
    contribute no arrows.
    """
    from .causal import find_causal_shards

    note: Dict[str, Any] = {"flows": 0}
    if not find_causal_shards(artifacts.metrics_path):
        note["note"] = ("no causal shards next to the metrics stream "
                        "(run with --trace-causal)")
        return [], note
    from .critpath import load_causal

    graph = load_causal(artifacts.metrics_path)

    # Per-rank epoch windows: sorted (window_end_ps, ts_us, dur_us).
    windows: Dict[int, Tuple[List[int], List[Tuple[float, float]]]] = {}
    for rank, records in artifacts.rank_records.items():
        ends: List[int] = []
        spans: List[Tuple[float, float]] = []
        for record in records:
            if record.get("kind") != "rank_epoch":
                continue
            end_ps = record.get("window_end_ps")
            mono = record.get("mono_s")
            if end_ps is None or mono is None:
                continue
            ends.append(int(end_ps))
            spans.append((us(mono), float(record.get("wall_s", 0.0)) * 1e6))
        if ends:
            windows[rank] = (ends, spans)

    def anchor(rank: int, sim_ps: int) -> Optional[float]:
        """A wall-clock ts inside the epoch slice that ran ``sim_ps``."""
        mapped = windows.get(rank)
        if mapped is None:
            return None
        ends, spans = mapped
        index = bisect_left(ends, sim_ps)
        if index >= len(ends):
            index = len(ends) - 1
        start, dur = spans[index]
        return start + dur * 0.5

    events: List[Dict[str, Any]] = []
    emitted = dropped = unanchored = 0
    for (dest_rank, seq), (link_id, send_seq) in sorted(graph.recvs.items()):
        link = graph.links.get(link_id)
        dest_node = graph.nodes.get((dest_rank, seq))
        if link is None or dest_node is None:
            continue
        src_rank = (link["rank_a"] if dest_rank == link["rank_b"]
                    else link["rank_b"])
        send = graph.sends.get((src_rank, send_seq))
        deliver_ps = dest_node[0]
        if send is not None and send[0] is not None \
                and (src_rank, send[0]) in graph.nodes:
            send_ps = graph.nodes[(src_rank, send[0])][0]
        else:
            send_ps = max(0, deliver_ps - int(link.get("latency_ps") or 0))
        src_ts = anchor(src_rank, send_ps)
        dest_ts = anchor(dest_rank, deliver_ps)
        if src_ts is None or dest_ts is None:
            unanchored += 1
            continue
        if emitted >= _FLOW_LIMIT:
            dropped += 1
            continue
        emitted += 1
        events.extend(flow_pair(
            flow_id=emitted,
            name=str(link.get("name", f"link{link_id}")),
            cat="causal",
            src=(src_rank, tid(src_rank, "[engine] epochs",
                               f"rank {src_rank}"), src_ts),
            dest=(dest_rank, tid(dest_rank, "[engine] epochs",
                                 f"rank {dest_rank}"),
                  max(dest_ts, src_ts)),
        ))
    note["flows"] = emitted
    if dropped:
        note["dropped"] = dropped
        note["note"] = f"flow arrows capped at {_FLOW_LIMIT}"
    if unanchored:
        note["unanchored"] = unanchored
    return events, note


def merge_to_file(metrics_path: Union[str, Path],
                  out_path: Union[str, Path, None] = None, *,
                  flows: bool = False) -> Path:
    """Merge a run's streams and write ``<metrics>.trace.json``."""
    artifacts = RunArtifacts(metrics_path)
    trace = merge_trace(artifacts, flows=flows)
    if out_path is None:
        base = Path(metrics_path)
        out_path = base.with_name(base.name + ".trace.json")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return out_path
