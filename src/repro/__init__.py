"""PySST — a Python reproduction of the Structural Simulation Toolkit.

Reproduction of A.F. Rodrigues, R.C. Murphy, P. Kogge, K.D. Underwood,
"The Structural Simulation Toolkit: exploring novel architectures"
(SC'06).  See DESIGN.md for the system inventory, the paper-text
mismatch notice, and the experiment index.

Layering (import whichever level you need):

* ``repro.core``      — the discrete-event engine, components, links,
  clocks, statistics, partitioning and the conservative parallel engine.
* ``repro.config``    — the Python configuration layer: build, validate,
  serialize and partition machine descriptions.
* ``repro.processor`` / ``repro.memory`` / ``repro.network`` /
  ``repro.power``     — the component model library.
* ``repro.miniapps``  — Mantevo-style workload motifs that run *on* the
  simulated machines.
* ``repro.analysis``  — output tables, relative-performance helpers and
  the validation-metric framework.
"""

from . import core
from .core import (Component, Params, ParallelSimulation, Simulation,
                   SubComponent, register, sweep_axes)

__version__ = "1.0.0"

__all__ = [
    "Component",
    "Params",
    "ParallelSimulation",
    "Simulation",
    "SubComponent",
    "core",
    "register",
    "sweep_axes",
    "__version__",
]
