"""Design-space exploration driver (the paper's §5.2.1 use case).

The headline demonstration of SST is sweeping architectural parameters
— memory technology x processor issue width — against miniapp
workloads, and folding performance, power and cost into one comparison
(Figs. 10-12).  This module packages that flow as a library API:

    point = run_design_point("hpccg", issue_width=4, technology="GDDR5")
    grid  = sweep(["hpccg", "lulesh"], widths=[1, 2, 4, 8],
                  technologies=["DDR2-800", "DDR3-1066", "GDDR5"])

Every point is an actual discrete-event simulation (MixCore blocks
against a NodeMemory channel model), evaluated through the McPAT-lite
and wafer-cost models into a :class:`~repro.power.energy.DesignPoint`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .config import ConfigGraph, build
from .core import units
from .core.backends import make_job_pool
from .core.units import SimTime
from .power import CorePowerParams, DesignPoint, WaferParams, evaluate_design_point

#: The sweep axes of the paper's study.
PAPER_TECHNOLOGIES = ("DDR2-800", "DDR3-1066", "GDDR5")
PAPER_WIDTHS = (1, 2, 4, 8)
PAPER_WORKLOADS = ("hpccg", "lulesh")


def design_point_graph(workload: str, *, issue_width: int, technology: str,
                       instructions: int, n_cores: int = 1,
                       clock: str = "2GHz", channels: int = 1) -> ConfigGraph:
    """Declare the design-point machine: ``n_cores`` MixCores sharing one
    NodeMemory of the given technology."""
    graph = ConfigGraph(f"dse-{workload}-w{issue_width}-{technology}")
    graph.component("mem", "memory.NodeMemory",
                    {"technology": technology, "channels": channels,
                     "n_ports": n_cores})
    for i in range(n_cores):
        graph.component(f"core{i}", "processor.MixCore",
                        {"workload": workload, "instructions": instructions,
                         "issue_width": issue_width, "clock": clock})
        graph.link(f"core{i}", "mem", "mem", f"core{i}", latency="1ns")
    return graph


def _warm_snapshot_path(warm_dir: Union[str, Path], graph: ConfigGraph,
                        seed: int, warm_ps: SimTime) -> Path:
    """Per-point warm-start snapshot location.

    Keyed by the config-graph hash, the seed and the warm prefix
    length — the inputs that determine the simulated-time prefix
    bit-exactly — so distinct design points never share a snapshot and
    a changed graph invalidates the warm cache automatically.
    """
    from .obs.manifest import graph_hash

    tag = hashlib.sha256(
        f"{graph_hash(graph)}/{seed}/{warm_ps}".encode("utf-8")
    ).hexdigest()[:16]
    return Path(warm_dir) / f"warm-{tag}"


def run_design_point(workload: str, *, issue_width: int = 2,
                     technology: str = "DDR3-1333",
                     instructions: int = 2_000_000, n_cores: int = 1,
                     clock: str = "2GHz", channels: int = 1,
                     memory_gb: float = 4.0, seed: int = 1,
                     core_params: CorePowerParams = CorePowerParams(),
                     wafer: WaferParams = WaferParams(),
                     warm_start: Optional[Union[str, int]] = None,
                     warm_dir: Optional[Union[str, Path]] = None) -> DesignPoint:
    """Simulate one (workload x width x memory) configuration.

    Returns a :class:`DesignPoint` carrying runtime, power and cost.

    With ``warm_start`` (a simulated-time prefix, e.g. ``"5us"``) the
    evaluation resumes from a `repro.ckpt` snapshot of that prefix in
    ``warm_dir`` when one exists; otherwise it simulates the prefix,
    snapshots it for next time, and continues.  Either way the executed
    event sequence — and therefore the returned :class:`DesignPoint` —
    is identical to a cold evaluation: exact-mode restores are
    bit-identical and the prefix segmentation is invisible to models.
    """
    graph = design_point_graph(workload, issue_width=issue_width,
                               technology=technology,
                               instructions=instructions, n_cores=n_cores,
                               clock=clock, channels=channels)
    sim = None
    result = None
    if warm_start is not None:
        if warm_dir is None:
            raise ValueError("warm_start requires warm_dir")
        warm_ps = units.parse_time(warm_start, default_unit="ps")
        wpath = _warm_snapshot_path(warm_dir, graph, seed, warm_ps)
        if (wpath / "MANIFEST.json").is_file():
            from .ckpt import restore

            sim = restore(wpath)
        else:
            sim = build(graph, seed=seed)
            prefix = sim.run(max_time=warm_ps, finalize=False)
            if prefix.reason == "max_time":
                from .ckpt import snapshot

                snapshot(sim, wpath)
            else:
                # The whole run fit inside the warm prefix: nothing to
                # warm-start from, the prefix result is the result.
                sim.finish()
                result = prefix
    if sim is None:
        sim = build(graph, seed=seed)
    if result is None:
        result = sim.run()
    if result.reason != "exit":
        raise RuntimeError(
            f"design point did not complete: {result.reason} "
            f"({workload}, w{issue_width}, {technology})"
        )
    values = sim.stat_values()
    runtime_ps = int(max(values[f"core{i}.runtime_ps"]
                         for i in range(n_cores)))
    total_instructions = int(sum(values[f"core{i}.instructions"]
                                 for i in range(n_cores)))
    mem = sim.component("mem")
    freq_hz = sim.component("core0").config.freq_hz
    return evaluate_design_point(
        f"{workload}/w{issue_width}/{technology}",
        issue_width=issue_width,
        freq_hz=freq_hz,
        memory_technology=technology,
        runtime_ps=runtime_ps,
        instructions=total_instructions,
        dram=mem.dram,
        memory_gb=memory_gb,
        core_params=core_params,
        wafer=wafer,
        n_cores=n_cores,
    )


@dataclass
class SweepResult:
    """Outcome grid of a full design-space sweep."""

    points: Dict[Tuple[str, int, str], DesignPoint] = field(default_factory=dict)

    def point(self, workload: str, width: int, technology: str) -> DesignPoint:
        return self.points[(workload, width, technology)]

    def best(self, metric: str, workload: Optional[str] = None) -> DesignPoint:
        """Highest-scoring point by DesignPoint attribute name."""
        candidates = [
            p for (wl, _w, _t), p in self.points.items()
            if workload is None or wl == workload
        ]
        if not candidates:
            raise ValueError("no points match")
        return max(candidates, key=lambda p: getattr(p, metric))

    def speedup(self, workload: str, width: int, technology: str,
                baseline_technology: str) -> float:
        """runtime(baseline) / runtime(tech) - 1, the Fig. 10 quantity."""
        here = self.point(workload, width, technology)
        base = self.point(workload, width, baseline_technology)
        return base.runtime_ps / here.runtime_ps - 1.0


#: defaults mirrored from run_design_point, used to normalise cache keys
_GRAPH_DEFAULTS = {"instructions": 2_000_000, "n_cores": 1,
                   "clock": "2GHz", "channels": 1}


def _point_cache_key(workload: str, width: int, technology: str,
                     point_kwargs: Dict) -> str:
    """Stable cache key for one design point.

    The graph part is the config-graph hash (component types, params,
    links — anything that changes the simulated machine changes the
    key); the eval part covers inputs that affect the outcome without
    appearing in the graph: the seed and the power/cost model
    parameters.
    """
    from .obs.manifest import graph_hash

    graph_args = {k: point_kwargs.get(k, d) for k, d in _GRAPH_DEFAULTS.items()}
    graph = design_point_graph(workload, issue_width=width,
                               technology=technology, **graph_args)
    eval_part = {
        "seed": point_kwargs.get("seed", 1),
        "memory_gb": point_kwargs.get("memory_gb", 4.0),
        "core_params": dataclasses.asdict(
            point_kwargs.get("core_params", CorePowerParams())),
        "wafer": dataclasses.asdict(
            point_kwargs.get("wafer", WaferParams())),
    }
    blob = json.dumps({"graph": graph_hash(graph), "eval": eval_part},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def _sweep_eval(spec) -> DesignPoint:
    """Evaluate one sweep point (module-level so it pickles for the
    processes job pool).

    ``spec`` is ``(workload, width, technology, point_kwargs)`` plus an
    optional fifth element ``(live_path, slot_index)`` marking this
    point's slot in a fleet live segment (:mod:`repro.obs.live.sweep`).
    """
    workload, width, technology, point_kwargs = spec[:4]
    live = None
    start_mono = 0.0
    if len(spec) > 4 and spec[4] is not None:
        live_path, slot = spec[4]
        try:
            from .obs.live.sweep import SweepLive

            live = SweepLive.open(live_path)
            start_mono = live.mark_running(slot)
        except Exception:  # fleet status must never fail an evaluation
            live = None
    try:
        point = run_design_point(workload, issue_width=width,
                                 technology=technology, **point_kwargs)
    except BaseException:
        if live is not None:
            live.mark_done(slot, start_mono, failed=True)
        raise
    if live is not None:
        live.mark_done(slot, start_mono)
    return point


def sweep(workloads: Sequence[str] = PAPER_WORKLOADS,
          widths: Sequence[int] = PAPER_WIDTHS,
          technologies: Sequence[str] = PAPER_TECHNOLOGIES,
          *, backend: str = "serial", jobs: Optional[int] = None,
          cache_dir: Optional[Union[str, Path]] = None,
          warm_start: Optional[Union[str, int]] = None,
          warm_dir: Optional[Union[str, Path]] = None,
          live_path: Optional[Union[str, Path]] = None,
          **point_kwargs) -> SweepResult:
    """Run the full cartesian design-space sweep.

    Points are independent simulations, so the sweep rides the engine's
    job-pool layer: ``backend`` selects the substrate (``serial`` /
    ``threads`` / ``processes``; processes is the one that scales past
    the GIL) and ``jobs`` bounds its width (default: usable CPU count).

    ``cache_dir`` enables per-point result caching keyed by the
    config-graph hash plus the non-graph evaluation inputs (seed,
    memory size, power/cost parameters): cached points are loaded
    instead of re-simulated, freshly evaluated points are written back.
    Cache files are read and written only in the calling process.

    ``warm_start`` (a simulated-time prefix) warm-starts every point
    from a per-point `repro.ckpt` prefix snapshot under ``warm_dir``
    (defaults to ``cache_dir``): the first sweep simulates and
    snapshots each prefix, subsequent sweeps restore instead of
    re-simulating it.  Results are identical to a cold sweep — the
    result cache key deliberately ignores warm-start settings.

    ``live_path`` creates a fleet live segment with one slot per design
    point (:mod:`repro.obs.live.sweep`): pool workers mark their points
    running/done in flight, so ``obs top`` and ``sweep
    --serve-metrics`` can show fleet-wide completion and ETA.
    """
    if warm_start is not None:
        warm_root = warm_dir if warm_dir is not None else cache_dir
        if warm_root is None:
            raise ValueError("warm_start requires warm_dir (or cache_dir)")
        point_kwargs = {**point_kwargs, "warm_start": warm_start,
                        "warm_dir": str(warm_root)}
    keys = [(wl, w, t) for wl in workloads for w in widths
            for t in technologies]
    fleet = None
    slot_of: Dict[Tuple[str, int, str], int] = {}
    if live_path is not None:
        from .obs.live.sweep import SweepLive

        fleet = SweepLive.create(live_path, len(keys))
        slot_of = {key: i for i, key in enumerate(keys)}
    result = SweepResult()
    todo: List[Tuple[str, int, str]] = []
    cache = Path(cache_dir) if cache_dir is not None else None
    cache_keys: Dict[Tuple[str, int, str], str] = {}
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)
        for key in keys:
            ck = _point_cache_key(*key, point_kwargs)
            cache_keys[key] = ck
            path = cache / f"{ck}.json"
            if path.exists():
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    result.points[key] = DesignPoint(**data)
                    if fleet is not None:
                        # Cache hits are done before the pool starts.
                        from .obs.live.sweep import POINT_DONE
                        fleet.mark(slot_of[key], POINT_DONE)
                    continue
                except (ValueError, TypeError):
                    pass  # corrupt or stale entry: fall through, re-evaluate
            todo.append(key)
    else:
        todo = list(keys)
    try:
        if todo:
            specs = []
            for key in todo:
                spec = key + (point_kwargs,)
                if fleet is not None:
                    spec = spec + ((str(live_path), slot_of[key]),)
                specs.append(spec)
            with make_job_pool(backend, jobs) as pool:
                points = pool.map(_sweep_eval, specs)
            for key, point in zip(todo, points):
                result.points[key] = point
                if cache is not None:
                    path = cache / f"{cache_keys[key]}.json"
                    path.write_text(
                        json.dumps(dataclasses.asdict(point), indent=2,
                                   sort_keys=True),
                        encoding="utf-8",
                    )
    finally:
        if fleet is not None:
            fleet.close()
    # Restore the declared grid order (cache hits landed first).
    result.points = {key: result.points[key] for key in keys}
    return result
