#!/usr/bin/env python
"""Component-hygiene lint: keep the model library declarative.

PR 7 migrated every library component onto the declarative API
(``port()`` / ``state()`` / ``stat`` descriptors plus the
``on_setup`` / ``on_finish`` / ``on_restore`` hooks); the imperative
checkpoint protocol (``STATE_EXCLUDE``, hand-written ``capture_state``
/ ``restore_state`` overrides) survives only in ``repro.core`` as the
compat layer.  This lint fails CI when a class **outside**
``src/repro/core`` reintroduces it:

* a ``STATE_EXCLUDE`` class attribute — declare the attribute with
  ``state(..., save=False)`` instead;
* a ``capture_state`` / ``restore_state`` method — declare a
  ``state(..., reconstruct="...")`` hook or ``on_restore`` instead.

Usage: ``python tools/lint_components.py [root]`` (default
``src/repro``).  Exit status 1 on any violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: (construct, remedy) — what we ban and what to use instead.
BANNED_METHODS = {
    "capture_state": 'declare transient state with state(..., save=False) '
                     'and a reconstruct="..." hook',
    "restore_state": 'declare a reconstruct="..." state hook or override '
                     'on_restore()',
}
BANNED_ATTRS = {
    "STATE_EXCLUDE": "declare the attribute with state(..., save=False)",
}


def _assigned_names(node: ast.stmt):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id


def lint_file(path: Path):
    """Yield (lineno, message) violations for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt.name in BANNED_METHODS:
                yield (stmt.lineno,
                       f"{node.name}.{stmt.name}: imperative checkpoint "
                       f"override — {BANNED_METHODS[stmt.name]}")
            for name in _assigned_names(stmt):
                if name in BANNED_ATTRS:
                    yield (stmt.lineno,
                           f"{node.name}.{name}: imperative state "
                           f"bookkeeping — {BANNED_ATTRS[name]}")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path("src/repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations = 0
    for path in sorted(root.rglob("*.py")):
        # repro.core hosts the engine-side compat layer; everything
        # else must stay declarative.
        if "core" in path.relative_to(root).parts[:1]:
            continue
        for lineno, message in lint_file(path):
            print(f"{path}:{lineno}: {message}")
            violations += 1
    if violations:
        print(f"\n{violations} violation(s); see docs/COMPONENTS.md "
              "for the declarative API", file=sys.stderr)
        return 1
    print(f"component lint OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
