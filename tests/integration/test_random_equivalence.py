"""Property-based engine equivalence over randomized component graphs.

The strongest correctness statement the toolkit can make: for *any*
component graph, partitioning it across ranks must not change what the
simulation computes.  Hypothesis generates random pipelines/fan-out
graphs of sources, forwarders and sinks with random latencies and rank
counts; the sequential engine is the oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (Component, Params, ParallelSimulation, Simulation)
from tests.conftest import Sink, Source


class Forwarder(Component):
    """Forwards from ``in`` to every connected ``out<i>`` port."""

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.n_outs = self.params.find_int("n_outs", 1)
        self.forwarded = self.stats.counter("forwarded")
        self.set_handler("in", self.on_event)

    def on_event(self, event):
        self.forwarded.add()
        for i in range(self.n_outs):
            if self.port_connected(f"out{i}"):
                self.send(f"out{i}", event.clone())


@st.composite
def graph_specs(draw):
    """A random two-layer fan-out machine description."""
    n_sources = draw(st.integers(1, 3))
    n_forwarders = draw(st.integers(1, 4))
    n_sinks = draw(st.integers(1, 4))
    sources = [
        {
            "count": draw(st.integers(1, 6)),
            "period": draw(st.integers(500, 5000)),  # ps
            "forwarder": draw(st.integers(0, n_forwarders - 1)),
            "latency": draw(st.integers(1000, 50_000)),
        }
        for _ in range(n_sources)
    ]
    forwarders = []
    for _ in range(n_forwarders):
        outs = draw(st.lists(st.integers(0, n_sinks - 1), min_size=1,
                             max_size=n_sinks, unique=True))
        forwarders.append({
            "sinks": outs,
            "latencies": [draw(st.integers(1000, 50_000)) for _ in outs],
        })
    ranks = draw(st.integers(2, 4))
    placement_seed = draw(st.integers(0, 10_000))
    return {
        "sources": sources,
        "forwarders": forwarders,
        "n_sinks": n_sinks,
        "ranks": ranks,
        "placement_seed": placement_seed,
    }


def build_machine(spec, host, rank_of):
    """Instantiate the random spec on a Simulation or ParallelSimulation."""

    def sim_for(key):
        if isinstance(host, ParallelSimulation):
            return host.rank_sim(rank_of(key))
        return host

    def connect(a, pa, b, pb, latency):
        if isinstance(host, ParallelSimulation):
            host.connect(a, pa, b, pb, latency=latency)
        else:
            host.connect(a, pa, b, pb, latency=latency)

    # Ports are single-connection, so every edge gets its own receive
    # port on its target (handlers registered explicitly).
    sinks = [Sink(sim_for(("sink", i)), f"sink{i}")
             for i in range(spec["n_sinks"])]
    forwarders = []
    for i, f_spec in enumerate(spec["forwarders"]):
        f = Forwarder(sim_for(("fwd", i)), f"fwd{i}",
                      Params({"n_outs": len(f_spec["sinks"])}))
        forwarders.append(f)
        for out_index, (sink_index, latency) in enumerate(
                zip(f_spec["sinks"], f_spec["latencies"])):
            sink = sinks[sink_index]
            in_port = f"in_f{i}_{out_index}"
            sink.set_handler(in_port, sink.on_event)
            connect(f, f"out{out_index}", sink, in_port, latency)
    for i, s_spec in enumerate(spec["sources"]):
        src = Source(sim_for(("src", i)), f"src{i}",
                     Params({"count": s_spec["count"],
                             "period": s_spec["period"]}))
        target = forwarders[s_spec["forwarder"]]
        in_port = f"in_s{i}"
        target.set_handler(in_port, target.on_event)
        connect(src, "out", target, in_port, s_spec["latency"])
    return sinks


def count_stats(values):
    """Only the order-insensitive count statistics."""
    return {k: v for k, v in values.items() if not k.endswith("_ps")}


@given(graph_specs())
@settings(max_examples=30, deadline=None)
def test_random_graphs_partition_invariant(spec):
    seq = Simulation(seed=3)
    seq_sinks = build_machine(spec, seq, rank_of=lambda key: 0)
    seq_result = seq.run()
    assert seq_result.reason == "exhausted"

    import random

    placement_rng = random.Random(spec["placement_seed"])
    placement = {}

    def rank_of(key):
        if key not in placement:
            placement[key] = placement_rng.randrange(spec["ranks"])
        return placement[key]

    par = ParallelSimulation(spec["ranks"], seed=3)
    par_sinks = build_machine(spec, par, rank_of=rank_of)
    par_result = par.run()
    assert par_result.reason == "exhausted"

    # Counts identical; every sink saw the same arrival-time multiset.
    assert count_stats(par.stat_values()) == count_stats(seq.stat_values())
    for seq_sink, par_sink in zip(seq_sinks, par_sinks):
        assert sorted(par_sink.arrival_times) == \
            sorted(seq_sink.arrival_times), seq_sink.name
    assert par_result.events_executed == seq_result.events_executed


@given(graph_specs(), st.sampled_from(["heap", "binned"]))
@settings(max_examples=20, deadline=None)
def test_random_graphs_queue_invariant(spec, queue):
    """The pending-event-set implementation must not change results."""
    results = []
    for kind in ("heap", queue):
        sim = Simulation(seed=3, queue=kind)
        sinks = build_machine(spec, sim, rank_of=lambda key: 0)
        sim.run()
        results.append((
            count_stats(sim.stat_values()),
            [tuple(s.arrival_times) for s in sinks],
        ))
    assert results[0] == results[1]
