"""Cross-validation: AMM analytic predictions vs the discrete-event simulator.

The paper's §5 methodology uses *multiple* prediction techniques —
back-of-envelope AMMs up through simulation — and gains confidence when
they agree.  These tests close that loop: for every halo app the
analytic iteration-time prediction must track the simulated machine
within a modelling tolerance.
"""

import pytest

from repro.amm import MachineModel, predict_halo_app_iteration_ps
from repro.config import build
from repro.core.units import parse_size_bytes, parse_time
from repro.miniapps import (app_runtime_stats, build_app_machine,
                            grid_dims_3d, halo_neighbors_3d)
from repro.miniapps.apps import CTH, HPCCG, SAGE, Charon, Lulesh

APPS = {"CTH": CTH, "SAGE": SAGE, "Charon": Charon, "HPCCG": HPCCG,
        "Lulesh": Lulesh}
N_RANKS = 16
ITERATIONS = 3


def simulate_iteration_ps(app_name: str) -> float:
    graph = build_app_machine(f"miniapps.{app_name}", N_RANKS,
                              iterations=ITERATIONS)
    sim = build(graph, seed=7)
    result = sim.run()
    assert result.reason == "exit"
    return app_runtime_stats(sim, N_RANKS)["runtime_ps"] / ITERATIONS


def predict_iteration_ps(app_name: str) -> float:
    defaults = APPS[app_name].DEFAULTS
    neighbors = halo_neighbors_3d(0, grid_dims_3d(N_RANKS))
    return predict_halo_app_iteration_ps(
        MachineModel(),
        n_ranks=N_RANKS,
        n_neighbors=len(neighbors),
        msg_size=parse_size_bytes(defaults["msg_size"]),
        msgs_per_neighbor=defaults.get("msgs_per_neighbor", 1),
        compute_ps=parse_time(defaults["compute_ps"]),
        allreduces=defaults.get("allreduces", 0),
        overlap_fraction=defaults.get("overlap_fraction", 0.0),
    )


@pytest.mark.parametrize("app", sorted(APPS))
def test_amm_tracks_simulation(app):
    measured = simulate_iteration_ps(app)
    predicted = predict_iteration_ps(app)
    # Within 20% — the analytic model has no router contention, no
    # cross-rank skew, no torus hop-count distribution.
    assert predicted == pytest.approx(measured, rel=0.20), \
        (app, measured, predicted)


def test_amm_preserves_app_ordering():
    """Even if absolute errors existed, the AMM must rank the apps the
    same way the simulator does — that ranking is what an architect
    uses an AMM for."""
    measured = {app: simulate_iteration_ps(app) for app in APPS}
    predicted = {app: predict_iteration_ps(app) for app in APPS}
    measured_order = sorted(APPS, key=measured.__getitem__)
    predicted_order = sorted(APPS, key=predicted.__getitem__)
    assert measured_order == predicted_order


def test_amm_predicts_bandwidth_sensitivity_direction():
    """Halving AMM injection bandwidth must slow CTH much more than
    Charon — the Fig. 9 conclusion, reproduced analytically."""
    slow = MachineModel().evolve(injection_bandwidth=0.4e9)

    def ratio(app_name):
        defaults = APPS[app_name].DEFAULTS
        neighbors = halo_neighbors_3d(0, grid_dims_3d(N_RANKS))
        kwargs = dict(
            n_ranks=N_RANKS, n_neighbors=len(neighbors),
            msg_size=parse_size_bytes(defaults["msg_size"]),
            msgs_per_neighbor=defaults.get("msgs_per_neighbor", 1),
            compute_ps=parse_time(defaults["compute_ps"]),
            allreduces=defaults.get("allreduces", 0),
            overlap_fraction=defaults.get("overlap_fraction", 0.0),
        )
        return (predict_halo_app_iteration_ps(slow, **kwargs)
                / predict_halo_app_iteration_ps(MachineModel(), **kwargs))

    assert ratio("Charon") < 1.15
    assert ratio("CTH") > 1.6
