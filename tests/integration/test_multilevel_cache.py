"""Integration: multi-level cache chains built from Cache components.

The event-driven Cache speaks MemRequest/MemResponse on both sides, so
levels compose by wiring one cache's ``mem`` port to the next one's
``cpu`` port.  These tests pin down the inclusion/traffic behaviour of
an L1 -> L2 -> controller chain.
"""

import pytest

from repro.config import ConfigGraph, build


def two_level_machine(*, requests=256, pattern="stream", footprint="64KB",
                      l1_size="4KB", l2_size="32KB", l2_prefetch=0,
                      outstanding=2):
    graph = ConfigGraph("two-level")
    graph.component("cpu", "processor.TrafficGenerator",
                    {"requests": requests, "pattern": pattern,
                     "stride": 64, "footprint": footprint,
                     "outstanding": outstanding})
    graph.component("l1", "memory.Cache",
                    {"size": l1_size, "ways": 2, "hit_latency": "1ns",
                     "level": "L1"})
    graph.component("l2", "memory.Cache",
                    {"size": l2_size, "ways": 4, "hit_latency": "4ns",
                     "level": "L2", "prefetch": l2_prefetch})
    graph.component("mem", "memory.MemController",
                    {"technology": "DDR3-1333"})
    graph.link("cpu", "mem", "l1", "cpu", latency="500ps")
    graph.link("l1", "mem", "l2", "cpu", latency="1ns")
    graph.link("l2", "mem", "mem", "cpu", latency="2ns")
    sim = build(graph, seed=3)
    result = sim.run()
    assert result.reason == "exit"
    return sim.stat_values()


class TestTwoLevelChain:
    def test_all_requests_complete(self):
        values = two_level_machine()
        assert values["cpu.completed"] == 256

    def test_filtering_down_the_hierarchy(self):
        """L2 only sees L1 misses; the controller only sees L2 misses."""
        values = two_level_machine()
        l1_traffic = values["l1.hits"] + values["l1.misses"]
        l2_traffic = values["l2.hits"] + values["l2.misses"]
        assert l1_traffic == 256
        # L2 demand accesses = L1 line fetches (plus L1 writebacks, none
        # here for a read stream).
        assert l2_traffic == values["l1.misses"]
        assert values["mem.requests"] == values["l2.misses"]

    def test_l2_captures_l1_capacity_misses(self):
        """A footprint that overflows L1 but fits L2: pass 2 hits in L2."""
        # 16KB footprint = 256 lines; L1 4KB(64 lines), L2 32KB(512).
        values = two_level_machine(requests=512, footprint="16KB")
        # Pass 1: 256 cold L1 misses -> L2 cold misses.
        # Pass 2: L1 still misses (footprint 4x L1) but L2 hits.
        assert values["l1.misses"] == 512
        assert values["l2.hits"] == 256
        assert values["l2.misses"] == 256
        assert values["mem.requests"] == 256

    def test_second_level_prefetcher_helps_streams(self):
        base = two_level_machine(requests=512, footprint="1MB")
        prefetched = two_level_machine(requests=512, footprint="1MB",
                                       l2_prefetch=4)
        assert prefetched["l2.prefetch_hits"] > 0
        assert prefetched["cpu.runtime_ps"] < base["cpu.runtime_ps"]

    def test_latency_strata(self):
        """Mean latencies order as L1-hit < L2-hit < memory."""
        # All-L1: tiny footprint second pass.
        all_l1 = two_level_machine(requests=128, footprint="2KB")
        # L2-resident: overflows L1, fits L2.
        l2_res = two_level_machine(requests=512, footprint="16KB")
        # Memory-bound: overflows both.
        mem_bound = two_level_machine(requests=256, footprint="4MB")
        # Compare the per-request completion-latency means via runtime
        # per completed request (all runs use the same issue window).
        def per_request(values):
            return values["cpu.runtime_ps"] / values["cpu.completed"]

        assert per_request(all_l1) < per_request(l2_res) < \
            per_request(mem_bound)

    def test_writeback_propagation(self):
        """Dirty L1 victims travel down as writes, not up as responses."""
        graph = ConfigGraph("wb")
        graph.component("cpu", "processor.TrafficGenerator",
                        {"requests": 256, "pattern": "stream", "stride": 64,
                         "footprint": "16KB", "outstanding": 1,
                         "write_fraction": 1.0})
        graph.component("l1", "memory.Cache",
                        {"size": "4KB", "ways": 2, "level": "L1"})
        graph.component("l2", "memory.Cache",
                        {"size": "32KB", "ways": 4, "level": "L2"})
        graph.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
        graph.link("cpu", "mem", "l1", "cpu", latency="500ps")
        graph.link("l1", "mem", "l2", "cpu", latency="1ns")
        graph.link("l2", "mem", "mem", "cpu", latency="2ns")
        sim = build(graph, seed=3)
        assert sim.run().reason == "exit"
        values = sim.stat_values()
        assert values["cpu.completed"] == 256
        assert values["l1.writebacks"] > 0
