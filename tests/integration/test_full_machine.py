"""Integration tests: whole machines built through the config layer.

These exercise the full pipeline the benchmarks rely on:
ConfigGraph -> (serialize ->) build / build_parallel -> run -> statistics,
with every model library in the loop.
"""

import pytest

from repro.config import (ConfigGraph, build, build_parallel, from_json,
                          to_dict, to_json)
from repro.core import Params, Simulation
from repro.miniapps import app_runtime_stats, build_app_machine


def _node_graph(n_cores=2, technology="DDR3-1333", requests=64):
    """TrafficGen cores -> private L1 -> shared bus -> controller -> DRAM."""
    g = ConfigGraph("node")
    g.component("bus", "memory.SharedBus",
                {"n_ports": n_cores, "bandwidth": "10.67GB/s"})
    g.component("ctrl", "memory.MemController",
                {"technology": technology, "policy": "frfcfs"})
    g.link("bus", "mem", "ctrl", "cpu", latency="2ns")
    for i in range(n_cores):
        g.component(f"cpu{i}", "processor.TrafficGenerator",
                    {"requests": requests, "pattern": "stream",
                     "stride": 64, "outstanding": 4})
        g.component(f"l1_{i}", "memory.Cache",
                    {"size": "4KB", "ways": 2, "hit_latency": "1ns"})
        g.link(f"cpu{i}", "mem", f"l1_{i}", "cpu", latency="1ns")
        g.link(f"l1_{i}", "mem", "bus", f"cpu{i}", latency="1ns")
    return g


class TestNodeMachine:
    def test_memory_chain_end_to_end(self):
        sim = build(_node_graph())
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        for i in range(2):
            assert values[f"cpu{i}.completed"] == 64
        # Bus saw all the cache fills (requests + responses).
        assert values["bus.transfers"] > 0
        assert values["ctrl.requests"] > 0

    def test_serialize_then_build_equivalent(self):
        graph = _node_graph()
        rebuilt = from_json(to_json(graph))
        assert to_dict(rebuilt) == to_dict(graph)
        sim_a = build(graph, seed=11)
        sim_b = build(rebuilt, seed=11)
        res_a, res_b = sim_a.run(), sim_b.run()
        assert sim_a.stat_values() == sim_b.stat_values()
        assert res_a.end_time == res_b.end_time

    def test_cache_size_changes_memory_pressure(self):
        # 256 streaming requests over an 8KB (128-line) footprint: the
        # second pass hits in a 16KB cache and misses in a 1KB one.
        def controller_requests(cache_size):
            g = ConfigGraph("n")
            g.component("cpu", "processor.TrafficGenerator",
                        {"requests": 256, "pattern": "stream", "stride": 64,
                         "footprint": "8KB", "outstanding": 2})
            g.component("l1", "memory.Cache", {"size": cache_size, "ways": 2})
            g.component("mem", "memory.SimpleMemory", {"latency": "50ns"})
            g.link("cpu", "mem", "l1", "cpu", latency="1ns")
            g.link("l1", "mem", "mem", "cpu", latency="1ns")
            sim = build(g)
            sim.run()
            return sim.stat_values()["mem.requests"]

        assert controller_requests("16KB") < controller_requests("1KB")


class TestMixCoreMachine:
    def _graph(self, n_cores, technology):
        g = ConfigGraph("mixnode")
        g.component("mem", "memory.NodeMemory",
                    {"technology": technology, "n_ports": n_cores})
        for i in range(n_cores):
            g.component(f"core{i}", "processor.MixCore",
                        {"workload": "hpccg", "instructions": 400_000,
                         "issue_width": 4})
            g.link(f"core{i}", "mem", "mem", f"core{i}", latency="1ns")
        return g

    def test_config_driven_design_point(self):
        sim = build(self._graph(2, "DDR3-1333"), seed=2)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        assert values["core0.instructions"] == 400_000
        assert values["core1.instructions"] == 400_000
        assert values["mem.bytes"] == pytest.approx(2 * 400_000 * 5.0, rel=0.02)

    def test_technology_sweep_through_configs(self):
        runtimes = {}
        for technology in ("DDR2-800", "DDR3-1333", "GDDR5"):
            sim = build(self._graph(4, technology), seed=2)
            sim.run()
            runtimes[technology] = max(
                sim.stat_values()[f"core{i}.runtime_ps"] for i in range(4))
        assert runtimes["GDDR5"] < runtimes["DDR3-1333"] < runtimes["DDR2-800"]


def _assert_equivalent(seq_values, par_values, rel=0.02):
    """Parallel-vs-sequential equivalence with the PDES tie caveat.

    Event *counts* (messages, iterations, bytes...) must match exactly.
    *Timing* statistics (queue waits, comm time, runtimes) may shift
    slightly: cross-rank deliveries are re-sequenced at the epoch
    exchange, so same-timestamp arrivals at a bandwidth-serialised
    resource can be served in a different (still deterministic) order
    than in the sequential engine.  SST carries the same caveat.
    """
    assert set(seq_values) == set(par_values)
    for key, seq_value in seq_values.items():
        par_value = par_values[key]
        if key.endswith("wait_ps") or key.endswith("comm_ps"):
            # Aggregate wait accounting is order-sensitive: when two
            # same-timestamp messages contend, *who* waits depends on
            # service order, so the sum of waits legitimately shifts.
            assert par_value == pytest.approx(seq_value, rel=0.5, abs=1e7), key
        elif key.endswith("_ps"):
            assert par_value == pytest.approx(seq_value, rel=rel, abs=1e6), key
        else:
            assert par_value == seq_value, key


class TestAppMachineParallel:
    @pytest.mark.parametrize("strategy", ["linear", "round_robin", "bfs", "kl"])
    def test_parallel_app_machine_matches_sequential(self, strategy):
        graph = build_app_machine("miniapps.HPCCG", 8, iterations=2)
        seq = build(graph, seed=4)
        seq_result = seq.run()
        assert seq_result.reason == "exit"

        graph2 = build_app_machine("miniapps.HPCCG", 8, iterations=2)
        par = build_parallel(graph2, 4, strategy=strategy, seed=4)
        par_result = par.run()
        assert par_result.reason == "exit"
        _assert_equivalent(seq.stat_values(), par.stat_values())

    def test_threads_backend_on_app_machine(self):
        graph = build_app_machine("miniapps.Charon", 8, iterations=2)
        seq = build(graph, seed=4)
        seq.run()
        graph2 = build_app_machine("miniapps.Charon", 8, iterations=2)
        with build_parallel(graph2, 2, backend="threads", seed=4) as par:
            par.run()
            _assert_equivalent(seq.stat_values(), par.stat_values())

    def test_parallel_run_is_self_deterministic(self):
        """Two identical parallel runs must agree bit-for-bit, ties and
        all — determinism holds within an engine configuration."""
        results = []
        for _ in range(2):
            graph = build_app_machine("miniapps.HPCCG", 8, iterations=2)
            par = build_parallel(graph, 4, strategy="round_robin", seed=4)
            par.run()
            results.append(par.stat_values())
        assert results[0] == results[1]

    def test_parallel_engine_reports_protocol_metrics(self):
        graph = build_app_machine("miniapps.CTH", 8, iterations=2)
        par = build_parallel(graph, 4, strategy="bfs", seed=4)
        result = par.run()
        assert result.epochs > 0
        assert result.remote_events > 0
        assert result.lookahead >= 1
        assert sum(result.per_rank_events) == result.events_executed


class TestInjectionBandwidthPipeline:
    def test_bandwidth_knob_reaches_the_nics(self):
        def runtime(bw):
            graph = build_app_machine("miniapps.CTH", 8, iterations=2,
                                      injection_bandwidth=bw)
            sim = build(graph, seed=5)
            assert sim.run().reason == "exit"
            return app_runtime_stats(sim, 8)["runtime_ps"]

        assert runtime("0.4GB/s") > 1.3 * runtime("3.2GB/s")

    def test_app_machine_statistics_complete(self):
        graph = build_app_machine("miniapps.SAGE", 8, iterations=3)
        sim = build(graph, seed=5)
        sim.run()
        stats = app_runtime_stats(sim, 8)
        assert stats["runtime_ps"] > 0
        assert stats["messages"] == sim.stat_values()["rank0.messages_sent"] * 8
        assert stats["mean_compute_ps"] > 0
        assert stats["mean_comm_ps"] >= 0
