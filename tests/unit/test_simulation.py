"""Unit tests for the sequential engine, clocks, links and components."""

import pytest

from repro.core import (Component, Event, LinkError, Params, Simulation,
                        SimulationError)
from tests.conftest import Clocked, PingPong, Sink, Source, Token


class TestBasicRun:
    def test_empty_simulation_exhausts(self):
        result = Simulation().run()
        assert result.reason == "exhausted"
        assert result.events_executed == 0
        assert result.end_time == 0

    def test_pingpong_runs_to_exit(self, make_pingpong):
        sim = Simulation(seed=1)
        ping, pong = make_pingpong(sim, n=10, latency="5ns")
        result = sim.run()
        assert result.reason == "exit"
        assert ping.received.count == 10
        assert pong.received.count == 10
        # Each one-way trip is 5ns; ping receives its 10th at 20 trips.
        assert result.end_time == 20 * 5000

    def test_max_time_stops_run(self, make_pingpong):
        sim = Simulation()
        make_pingpong(sim, n=10**9, latency="5ns")
        result = sim.run(max_time="100ns")
        assert result.reason == "max_time"
        assert result.end_time == 100_000

    def test_max_time_inclusive(self):
        sim = Simulation()
        sink = Sink(sim, "sink")
        source = Source(sim, "src", Params({"count": 3, "period": "10ns"}))
        sim.connect(source, "out", sink, "in", latency="1ns")
        result = sim.run(max_time="11ns")
        # Token emitted at 10ns arrives at 11ns: inclusive limit runs it.
        assert sink.received.count == 1
        assert result.reason in ("max_time", "exhausted")

    def test_max_events(self, make_pingpong):
        sim = Simulation()
        make_pingpong(sim, n=10**9)
        result = sim.run(max_events=7)
        assert result.reason == "max_events"
        assert result.events_executed == 7

    def test_end_simulation_stops(self):
        sim = Simulation()

        class Stopper(Component):
            def setup(self):
                self.schedule(5000, lambda _: self.sim.end_simulation())

        Stopper(sim, "stopper")
        result = sim.run()
        assert result.reason == "stopped"
        assert result.end_time == 5000

    def test_run_reentry_rejected(self):
        sim = Simulation()

        class Reenter(Component):
            def setup(self):
                self.schedule(1, self._go)

            def _go(self, _):
                self.sim.run()

        Reenter(sim, "re")
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_counted(self, make_pingpong):
        sim = Simulation()
        make_pingpong(sim, n=5)
        result = sim.run()
        assert result.events_executed == 10  # 5 round trips = 10 deliveries
        assert sim.events_executed == 10


class TestSchedulingRules:
    def test_past_scheduling_rejected(self):
        sim = Simulation()

        class BadComp(Component):
            def setup(self):
                self.schedule(100, self._fire)

            def _fire(self, _):
                # Directly poke the engine with a past timestamp.
                self.sim._push(self.sim.now - 50, 50, lambda e: None, None)

        BadComp(sim, "bad")
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulation()
        comp = Component(sim, "c")
        sim.setup()
        with pytest.raises(SimulationError):
            comp.schedule(-1, lambda _: None)

    def test_callback_payload(self):
        sim = Simulation()
        seen = []
        comp = Component(sim, "c")
        sim.setup()
        comp.schedule(10, seen.append, payload="hello")
        sim.run()
        assert seen == ["hello"]

    def test_callbacks_fire_in_time_order(self):
        sim = Simulation()
        comp = Component(sim, "c")
        sim.setup()
        order = []
        comp.schedule(30, lambda _: order.append(30))
        comp.schedule(10, lambda _: order.append(10))
        comp.schedule(20, lambda _: order.append(20))
        sim.run()
        assert order == [10, 20, 30]


class TestLinks:
    def test_send_on_unconnected_port(self):
        sim = Simulation()
        comp = Component(sim, "c")
        sim.setup()
        with pytest.raises(LinkError):
            comp.send("nowhere", Event())

    def test_double_connect_rejected(self):
        sim = Simulation()
        a, b, c = Component(sim, "a"), Component(sim, "b"), Component(sim, "c")
        sim.connect(a, "p", b, "p", latency="1ns")
        with pytest.raises(LinkError):
            sim.connect(a, "p", c, "p", latency="1ns")

    def test_zero_latency_rejected(self):
        sim = Simulation()
        a, b = Component(sim, "a"), Component(sim, "b")
        with pytest.raises(LinkError):
            sim.connect(a, "p", b, "p", latency=0)

    def test_delivery_without_handler_raises(self):
        sim = Simulation()
        a, b = Component(sim, "a"), Component(sim, "b")
        sim.connect(a, "out", b, "in", latency="1ns")
        sim.setup()
        a.send("out", Event())
        with pytest.raises(LinkError):
            sim.run()

    def test_extra_delay_adds_to_latency(self):
        sim = Simulation()
        sink = Sink(sim, "sink")
        src = Component(sim, "src")
        sim.connect(src, "out", sink, "in", latency="10ns")
        sim.setup()
        when = src.port("out").endpoint.send(Event(), extra_delay=5000)
        assert when == 15_000
        sim.run()
        assert sink.arrival_times == [15_000]

    def test_self_link(self):
        sim = Simulation()

        class Echo(Component):
            def __init__(self, sim_, name, params=None):
                super().__init__(sim_, name, params)
                self.times = []
                self.set_handler("loop", self.on_loop)

            def setup(self):
                self.send("loop", Token())

            def on_loop(self, event):
                self.times.append(self.now)
                if len(self.times) < 3:
                    self.send("loop", event)

        echo = Echo(sim, "echo")
        sim.self_link(echo, "loop", latency="7ns")
        sim.run()
        assert echo.times == [7000, 14000, 21000]

    def test_link_latency_query(self):
        sim = Simulation()
        a, b = Component(sim, "a"), Component(sim, "b")
        sim.connect(a, "p", b, "q", latency="42ns")
        assert a.link_latency("p") == 42_000
        assert b.link_latency("q") == 42_000
        with pytest.raises(LinkError):
            a.link_latency("other")


class TestClocks:
    def test_tick_count_and_times(self):
        sim = Simulation()
        comp = Clocked(sim, "c", Params({"clock": "1GHz", "n_ticks": 5}))
        sim.run()
        assert comp.ticks.count == 5
        assert sim.now == 5000  # 5 ticks at 1ns

    def test_handler_true_unregisters(self):
        sim = Simulation()
        comp = Clocked(sim, "c", Params({"clock": "2GHz", "n_ticks": 3}))
        result = sim.run()
        assert result.reason == "exhausted"
        assert comp.ticks.count == 3
        assert not comp.clock.active

    def test_cancel_and_reactivate_alignment(self):
        sim = Simulation()
        ticks = []

        class Gated(Component):
            def setup(self):
                self.clock = self.register_clock("1GHz", self.on_tick)
                self.schedule(2500, lambda _: self.clock.cancel())
                self.schedule(5500, lambda _: self.clock.reactivate())
                self.schedule(8500, lambda _: self.clock.cancel())

            def on_tick(self, cycle):
                ticks.append(self.now)

        Gated(sim, "g")
        sim.run(max_time="10ns")
        # Ticks at 1ns,2ns; cancelled at 2.5ns; resumes aligned: 6,7,8ns.
        assert ticks == [1000, 2000, 6000, 7000, 8000]

    def test_phase_offsets_first_tick(self):
        sim = Simulation()
        times = []

        class Phased(Component):
            def setup(self):
                self.register_clock("1GHz", lambda c: times.append(self.now),
                                    phase=300)

        Phased(sim, "p")
        sim.run(max_events=3)
        assert times == [1300, 2300, 3300]

    def test_two_clocks_interleave_deterministically(self):
        sim = Simulation()
        log = []

        class Dual(Component):
            def setup(self):
                self.register_clock("1GHz", lambda c: (log.append(("a", self.now)), True)[1] and None)
                self.register_clock("2GHz", lambda c: (log.append(("b", self.now)), True)[1] and None)

        Dual(sim, "d")
        sim.run(max_time="2ns")
        assert log == [("b", 500), ("a", 1000), ("b", 1000), ("b", 1500),
                       ("a", 2000), ("b", 2000)]


class TestComponentFramework:
    def test_duplicate_names_rejected(self):
        sim = Simulation()
        Component(sim, "same")
        with pytest.raises(SimulationError):
            Component(sim, "same")

    def test_add_after_setup_rejected(self):
        sim = Simulation()
        sim.setup()
        with pytest.raises(SimulationError):
            Component(sim, "late")

    def test_component_lookup(self):
        sim = Simulation()
        c = Component(sim, "c")
        assert sim.component("c") is c
        with pytest.raises(SimulationError):
            sim.component("ghost")

    def test_stats_namespacing(self, make_pingpong):
        sim = Simulation()
        make_pingpong(sim, n=3)
        sim.run()
        values = sim.stat_values()
        assert values["ping.received"] == 3
        assert values["pong.received"] == 3

    def test_rng_deterministic_across_sims(self):
        values = []
        for _ in range(2):
            sim = Simulation(seed=99)
            comp = Component(sim, "c")
            values.append(comp.rng.integers(0, 10**9))
        assert values[0] == values[1]

    def test_rng_differs_by_name_and_seed(self):
        sim = Simulation(seed=1)
        a, b = Component(sim, "a"), Component(sim, "b")
        assert a.rng.integers(0, 10**9) != b.rng.integers(0, 10**9)
        sim2 = Simulation(seed=2)
        a2 = Component(sim2, "a")
        sim1 = Simulation(seed=1)
        a1 = Component(sim1, "a")
        assert a1.rng.integers(0, 10**9) != a2.rng.integers(0, 10**9)

    def test_finish_called_once(self):
        sim = Simulation()
        calls = []

        class F(Component):
            def finish(self):
                calls.append(1)

        F(sim, "f")
        sim.run()
        sim.finish()
        assert calls == [1]

    def test_setup_idempotent(self):
        sim = Simulation()
        calls = []

        class S(Component):
            def setup(self):
                calls.append(1)

        S(sim, "s")
        sim.setup()
        sim.setup()
        assert calls == [1]

    def test_stat_table_renders(self, make_pingpong):
        sim = Simulation()
        make_pingpong(sim, n=2)
        sim.run()
        table = sim.stat_table()
        assert "ping.received" in table
        assert "counter" in table


class TestDeterminism:
    def test_identical_runs_identical_stats(self, make_pingpong):
        def run_once():
            sim = Simulation(seed=5)
            make_pingpong(sim, n=20, latency="3ns")
            sim.run()
            return sim.stat_values(), sim.now

        first, second = run_once(), run_once()
        assert first == second

    def test_queue_type_does_not_change_results(self, make_pingpong):
        results = []
        for queue in ("heap", "binned"):
            sim = Simulation(seed=5, queue=queue)
            make_pingpong(sim, n=20, latency="3ns")
            sim.run()
            results.append((sim.stat_values(), sim.now))
        assert results[0] == results[1]
