"""Tests for the power, area, cost and design-point models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import DRAMModel
from repro.power import (WIDTH_EXPONENT, CorePowerModel, CorePowerParams,
                         DesignPoint, WaferParams, die_cost_dollars,
                         dies_per_wafer, evaluate_design_point,
                         memory_cost_dollars, poisson_yield,
                         register_file_energy_scale, system_cost_dollars)


class TestCorePowerModel:
    def test_static_power_superlinear_in_width(self):
        p1 = CorePowerModel(1).static_power_w()
        p2 = CorePowerModel(2).static_power_w()
        p8 = CorePowerModel(8).static_power_w()
        # The width-dependent part grows as w^1.8: more than linear.
        assert (p8 - p1) > 4 * (p2 - p1)

    def test_area_superlinear(self):
        a = [CorePowerModel(w).area_mm2() for w in (1, 2, 4, 8)]
        assert a == sorted(a)
        growth = [(a[i + 1] - a[i]) for i in range(3)]
        assert growth[2] > 2 * growth[1] > 2 * growth[0] / 2

    def test_regfile_scaling_law(self):
        assert register_file_energy_scale(1) == 1.0
        assert register_file_energy_scale(2) == pytest.approx(2 ** 1.8)
        with pytest.raises(ValueError):
            register_file_energy_scale(0)

    def test_epi_mild_width_dependence(self):
        e1 = CorePowerModel(1).energy_per_instruction_j()
        e8 = CorePowerModel(8).energy_per_instruction_j()
        assert 1.0 < e8 / e1 < 1.5

    def test_total_power_composition(self):
        model = CorePowerModel(4)
        ips = 2e9
        assert model.total_power_w(ips) == pytest.approx(
            model.dynamic_power_w(ips) + model.static_power_w())

    def test_energy_of_run(self):
        model = CorePowerModel(2)
        energy = model.energy_j(instructions=1e9, elapsed_s=0.5)
        assert energy == pytest.approx(
            model.energy_per_instruction_j() * 1e9
            + model.static_power_w() * 0.5)

    def test_fig12_operating_point(self):
        """~8-wide: roughly 2-3x the core power of 1-wide at ~1.8x the
        throughput.  (The paper's "123% more power" is the full node
        including DRAM; core-only sits a bit higher, and the Fig. 12
        bench asserts the node-level number.)"""
        ips1, ips8 = 1.2e9, 1.2e9 * 1.78
        p1 = CorePowerModel(1).total_power_w(ips1)
        p8 = CorePowerModel(8).total_power_w(ips8)
        assert 1.9 < p8 / p1 < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CorePowerModel(0)
        with pytest.raises(ValueError):
            CorePowerModel(2, freq_hz=0)

    @given(st.integers(1, 16))
    @settings(max_examples=30)
    def test_power_monotone_in_width(self, w):
        ips = 1e9
        assert CorePowerModel(w + 1).total_power_w(ips) > \
            CorePowerModel(w).total_power_w(ips)


class TestCostModels:
    def test_dies_per_wafer_decreases_with_area(self):
        assert dies_per_wafer(50) > dies_per_wafer(200) > dies_per_wafer(600)

    def test_yield_decreases_with_area(self):
        assert poisson_yield(50) > poisson_yield(400)
        assert 0 < poisson_yield(400) < 1

    def test_die_cost_superlinear(self):
        c = [die_cost_dollars(a) for a in (50, 100, 200, 400)]
        assert c == sorted(c)
        # Doubling area more than doubles the area-dependent cost share.
        wafer = WaferParams(packaging_test_dollars=0.0)
        c50 = die_cost_dollars(50, wafer)
        c400 = die_cost_dollars(400, wafer)
        assert c400 > 8 * c50

    def test_memory_cost(self):
        assert memory_cost_dollars("GDDR5", 4) > \
            memory_cost_dollars("DDR3-1333", 4)
        assert memory_cost_dollars("DDR3-1333", 0) == 0

    def test_system_cost_combines(self):
        total = system_cost_dollars(100, "DDR3-1333", 4)
        assert total == pytest.approx(
            die_cost_dollars(100) + memory_cost_dollars("DDR3-1333", 4))

    def test_validation(self):
        with pytest.raises(ValueError):
            die_cost_dollars(0)
        with pytest.raises(ValueError):
            poisson_yield(-1)
        with pytest.raises(ValueError):
            memory_cost_dollars("DDR3-1333", -1)


class TestDesignPoint:
    def _point(self, runtime_ps=10**9, width=2, tech="DDR3-1333"):
        dram = DRAMModel(tech)
        dram.request(0, 0, 64)
        return evaluate_design_point(
            "p", issue_width=width, freq_hz=2e9, memory_technology=tech,
            runtime_ps=runtime_ps, instructions=10**6, dram=dram)

    def test_performance_derivation(self):
        point = self._point(runtime_ps=10**9)  # 1 ms
        assert point.runtime_s == pytest.approx(1e-3)
        assert point.performance == pytest.approx(1e9)

    def test_efficiency_metrics_positive(self):
        point = self._point()
        assert point.perf_per_watt > 0
        assert point.perf_per_dollar > 0
        assert point.energy_to_solution_j > 0

    def test_faster_run_better_everything(self):
        slow = self._point(runtime_ps=2 * 10**9)
        fast = self._point(runtime_ps=10**9)
        assert fast.performance > slow.performance
        assert fast.perf_per_dollar > slow.perf_per_dollar

    def test_gddr5_costs_more(self):
        ddr = self._point(tech="DDR3-1333")
        gddr = self._point(tech="GDDR5")
        assert gddr.system_cost_dollars > ddr.system_cost_dollars
        assert gddr.total_power_w > ddr.total_power_w

    def test_invalid_runtime(self):
        with pytest.raises(ValueError):
            self._point(runtime_ps=0)
