"""Tests for the declarative component API (PR 7).

Covers the descriptor layer (``port()`` / ``state()`` / ``stat``),
spec collection across inheritance, auto-wired engine services
(checkpoint capture, reconstruct hooks, telemetry gauges), graph-build
port validation, the opt-in event type checks, clock naming, the
``Params`` unused-key diagnostics, the component catalogue CLI, and
the component-hygiene lint.
"""

from __future__ import annotations

import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.config import ConfigGraph, build
from repro.config.graph import ConfigError
from repro.core import (Component, Event, Params, Simulation, SpecError,
                        UnusedParamsWarning, describe_component, port, stat,
                        state)

REPO = Path(__file__).resolve().parents[2]


class Ping(Event):
    pass


class Pong(Event):
    pass


class Echo(Component):
    """Bounces every Ping back as a Pong after a fixed delay."""

    io = port("ping in, pong out", event=Ping)

    _seen = state(0, gauge=True, doc="pings received")
    _log = state(list, doc="receive times")

    s_pings = stat.counter(doc="pings bounced")

    def on_io(self, event):
        self._seen += 1
        self._log.append(self.now)
        self.s_pings.add()
        self.send("io", Pong())


class TestPortSpec:
    def test_ports_doc_derived_from_specs(self):
        assert Echo.PORTS == {"io": "ping in, pong out"}

    def test_convention_handler_bound_at_init(self):
        sim = Simulation(seed=1)
        echo = Echo(sim, "e")
        assert echo.port("io").handler is not None

    def test_decorator_handler(self):
        class Dec(Component):
            data = port("in", event=Ping)

            @data.handler
            def _on_data(self, event):
                pass

        sim = Simulation(seed=1)
        comp = Dec(sim, "d")
        assert comp.port("data").handler is not None

    def test_indexed_family_matches_numbered_names(self):
        class Fan(Component):
            out = port("fanout", name="out<i>", required=False)

        spec = Fan._port_specs["out<i>"]
        assert spec.indexed
        assert spec.matches("out0") and spec.matches("out12")
        assert not spec.matches("out") and not spec.matches("outx")

    def test_describe_component_lists_everything(self):
        info = describe_component(Echo)
        assert [p["name"] for p in info["ports"]] == ["io"]
        assert {s["name"] for s in info["state"]} >= {"_seen", "_log"}
        assert [s["name"] for s in info["stats"]] == ["pings"]


class TestStateSpec:
    def test_default_and_factory_materialize_lazily(self):
        sim = Simulation(seed=1)
        echo = Echo(sim, "e")
        assert "_seen" not in echo.__dict__
        assert echo._seen == 0
        assert echo._log == []
        assert echo._log is echo._log  # factory result is cached

    def test_distinct_instances_do_not_share_factories(self):
        sim = Simulation(seed=1)
        a, b = Echo(sim, "a"), Echo(sim, "b")
        a._log.append(1)
        assert b._log == []

    def test_captured_and_restored(self):
        sim = Simulation(seed=1)
        echo = Echo(sim, "e")
        echo._seen = 5
        snap = echo.capture_state()
        assert snap["_seen"] == 5
        echo._seen = 0
        echo.restore_state(snap)
        assert echo._seen == 5

    def test_save_false_excluded_and_reconstructed(self):
        class Gen(Component):
            _it = state(None, save=False, reconstruct="_rebuild")
            _count = state(0)

            def _rebuild(self):
                self._it = iter(range(self._count, 100))

        sim = Simulation(seed=1)
        gen = Gen(sim, "g")
        gen._it = iter(range(100))
        for _ in range(7):
            next(gen._it)
        gen._count = 7
        snap = gen.capture_state()
        assert "_it" not in snap
        fresh = Gen(Simulation(seed=1), "g")
        fresh.restore_state(snap)
        assert next(fresh._it) == 7

    def test_gauges_sample_numbers_and_lengths(self):
        sim = Simulation(seed=1)
        echo = Echo(sim, "e")
        echo._seen = 3
        echo._log.extend([10, 20])

        class Sized(Component):
            _box = state(dict, gauge=True)

        sized = Sized(sim, "s")
        sized._box["k"] = 1
        assert echo.telemetry_gauges() == {"_seen": 3.0}  # _log not a gauge
        assert sized.telemetry_gauges() == {"_box": 1.0}

    def test_inherited_specs_merge_and_override(self):
        class Base(Component):
            _a = state(1)

        class Child(Base):
            _b = state(2)

        assert set(Child._state_specs) >= {"_a", "_b"}
        assert Base._state_specs.keys() >= {"_a"}
        assert "_b" not in Base._state_specs


class TestStatSpec:
    def test_prefix_stripped_for_default_name(self):
        sim = Simulation(seed=1)
        echo = Echo(sim, "e")
        echo.s_pings.add()
        assert sim.stats()["e.pings"].value() == 1

    def test_kinds(self):
        class Kinds(Component):
            s_n = stat.counter()
            s_lat = stat.accumulator("latency_ps")
            s_h = stat.histogram("sizes")

        sim = Simulation(seed=1)
        Kinds(sim, "k")
        names = set(sim.stats())
        assert {"k.n", "k.latency_ps", "k.sizes"} <= names

    def test_duplicate_stat_name_rejected(self):
        with pytest.raises(SpecError):
            class Dup(Component):
                s_x = stat.counter("events")
                s_y = stat.counter("events")


class TestLifecycleHooks:
    def test_on_setup_and_on_finish_called_in_order(self):
        calls = []

        class Hooked(Component):
            def on_setup(self):
                calls.append(("setup", self.name))

            def on_finish(self):
                calls.append(("finish", self.name))

        sim = Simulation(seed=1)
        Hooked(sim, "a")
        Hooked(sim, "b")
        sim.run()
        assert calls == [("setup", "a"), ("setup", "b"),
                         ("finish", "a"), ("finish", "b")]


class TestBuilderValidation:
    def _graph(self, port_b="cpu"):
        g = ConfigGraph("val")
        g.component("cpu", "processor.TrafficGenerator", {"requests": 4})
        g.component("mem", "memory.SimpleMemory", {})
        g.link("cpu", "mem", "mem", port_b, latency="1ns")
        return g

    def test_valid_graph_builds(self):
        build(self._graph(), seed=1)

    def test_unknown_port_rejected_before_instantiation(self):
        with pytest.raises(ConfigError, match="declares no such port"):
            build(self._graph(port_b="cpux"), seed=1)

    def test_required_port_must_be_connected(self):
        g = ConfigGraph("req")
        g.component("cpu", "processor.TrafficGenerator", {"requests": 4})
        with pytest.raises(ConfigError, match="required port"):
            build(g, seed=1)

    def test_event_validation_catches_wrong_type(self):
        from repro.core.link import LinkError
        from repro.memory.dram import SimpleMemory
        from repro.network.message import NetMessage

        class Bad(Component):
            out = port("sends garbage", required=False)

            def on_setup(self):
                self.send("out", NetMessage(src=0, dest=0, size=8))

        sim = Simulation(seed=1)
        sim.validate_events = True
        bad = Bad(sim, "bad")
        mem = SimpleMemory(sim, "mem")
        sim.connect(bad, "out", mem, "cpu", latency="1ns")
        with pytest.raises(LinkError, match="expects MemRequest"):
            sim.run()


class TestClockNaming:
    def test_multiple_clocks_get_distinct_names(self):
        class TwoClocks(Component):
            def __init__(self, sim, name, params=None):
                super().__init__(sim, name, params)
                self.register_clock("1GHz", self.t1)
                self.register_clock("2GHz", self.t2)
                self.register_clock("3GHz", self.t3, name="fast")

            def t1(self, c):
                return True

            def t2(self, c):
                return True

            def t3(self, c):
                return True

        sim = Simulation(seed=1)
        TwoClocks(sim, "tc")
        names = {clk.name for clk in sim._clocks}
        assert {"tc.clock", "tc.clock1", "tc.fast"} <= names


class TestParamsDiagnostics:
    def test_unused_key_warns_once_with_owner(self):
        sim = Simulation(seed=1)
        Echo(sim, "e", Params({"typo_key": 1}))
        with pytest.warns(UnusedParamsWarning, match="e.*typo_key"):
            sim.run(max_time=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sim2 = Simulation(seed=1)
            Echo(sim2, "ok", Params({}))
            sim2.run(max_time=10)

    def test_accept_suppresses_warning(self):
        params = Params({"meta": 1})
        params.accept("meta")
        assert params.finalize_check("x") == set()

    def test_with_defaults_propagates_consumption(self):
        params = Params({"msg_size": "4KB"})
        overlay = params.with_defaults({"msg_size": "1KB", "iters": 3})
        assert overlay.find_size_bytes("msg_size") == 4096
        assert params.finalize_check("x") == set()


class TestComponentCLI:
    def _run(self, *args):
        env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, env=env,
                              cwd=REPO)

    def test_list_names_all_libraries(self):
        proc = self._run("component", "list")
        assert proc.returncode == 0, proc.stderr
        for expected in ("memory.Cache", "network.Router",
                         "miniapps.HPCCG", "resilience.CheckpointedJob"):
            assert expected in proc.stdout

    def test_describe_shows_ports_state_stats(self):
        proc = self._run("component", "describe", "memory.Cache")
        assert proc.returncode == 0, proc.stderr
        assert "ports:" in proc.stdout and "statistics:" in proc.stdout
        assert "cpu" in proc.stdout and "mshr_stalls" in proc.stdout

    def test_describe_json_round_trips(self):
        import json

        proc = self._run("component", "describe", "memory.Cache", "--json")
        info = json.loads(proc.stdout)
        assert info["type_name"] == "memory.Cache"

    def test_describe_unknown_type_fails(self):
        """Unknown names exit 1 with a one-line error, not a traceback."""
        proc = self._run("component", "describe", "nosuch.Thing")
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr
        assert proc.stderr.count("\n") <= 1
        assert "error: unknown component type 'nosuch.Thing'" in proc.stderr
        assert "component list" in proc.stderr

    def test_describe_lists_slots_and_params(self):
        proc = self._run("component", "describe", "cluster.Scheduler")
        assert proc.returncode == 0, proc.stderr
        assert "slots:" in proc.stdout and "params:" in proc.stdout
        assert "cluster.FCFS" in proc.stdout
        assert "cluster.EASYBackfill" in proc.stdout

    def test_run_port_typo_is_one_line_error(self, tmp_path):
        from repro.config import ConfigGraph, save

        g = ConfigGraph("bad")
        g.component("cpu", "processor.TrafficGenerator", {"requests": 10})
        g.component("mem", "memory.SimpleMemory", {})
        g.link("cpu", "mem", "mem", "cpus", latency="1ns")  # typo'd port
        path = tmp_path / "bad.json"
        save(g, str(path))
        proc = self._run("run", str(path), "--max-time", "1us")
        assert proc.returncode == 1
        assert "declares no such port" in proc.stderr
        assert "Traceback" not in proc.stderr


class TestComponentLint:
    def test_library_is_clean(self):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import lint_components
        finally:
            sys.path.pop(0)
        assert lint_components.main([str(REPO / "src" / "repro")]) == 0

    def test_violations_detected(self, tmp_path):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import lint_components
        finally:
            sys.path.pop(0)
        bad = tmp_path / "lib" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "class Sneaky:\n"
            "    STATE_EXCLUDE = frozenset({'x'})\n"
            "    def capture_state(self):\n"
            "        return {}\n"
        )
        assert lint_components.main([str(tmp_path)]) == 1
