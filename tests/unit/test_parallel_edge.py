"""Edge cases of the conservative parallel engine."""

import pytest

from repro.core import (Component, Event, Params, ParallelSimulation,
                        Simulation)
from tests.conftest import PingPong, Sink, Source


class TestEdgeCases:
    def test_max_epochs_limit(self):
        psim = ParallelSimulation(2, seed=1)
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 10**6}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        result = psim.run(max_epochs=7)
        assert result.reason == "max_epochs"
        assert result.epochs == 7

    def test_exception_in_threads_backend_propagates(self):
        class Exploder(Component):
            def setup(self):
                self.schedule(1000, self._boom)

            def _boom(self, _):
                raise RuntimeError("model bug")

        psim = ParallelSimulation(2, seed=1, backend="threads")
        Exploder(psim.rank_sim(0), "x")
        Sink(psim.rank_sim(1), "s")
        with pytest.raises(RuntimeError, match="model bug"):
            psim.run()
        psim.close()

    def test_exception_in_serial_backend_propagates(self):
        class Exploder(Component):
            def setup(self):
                self.schedule(1000, self._boom)

            def _boom(self, _):
                raise RuntimeError("model bug")

        psim = ParallelSimulation(2, seed=1)
        Exploder(psim.rank_sim(0), "x")
        with pytest.raises(RuntimeError, match="model bug"):
            psim.run()

    def test_single_rank_parallel_equals_sequential(self):
        seq = Simulation(seed=4)
        a = PingPong(seq, "ping", Params({"initiator": True,
                                          "n_round_trips": 12}))
        b = PingPong(seq, "pong", Params({}))
        seq.connect(a, "io", b, "io", latency="7ns")
        seq.run()

        psim = ParallelSimulation(1, seed=4)
        a2 = PingPong(psim.rank_sim(0), "ping",
                      Params({"initiator": True, "n_round_trips": 12}))
        b2 = PingPong(psim.rank_sim(0), "pong", Params({}))
        psim.connect(a2, "io", b2, "io", latency="7ns")
        result = psim.run()
        assert result.reason == "exit"
        assert result.remote_events == 0
        assert psim.stat_values() == seq.stat_values()

    def test_binned_queue_backend_matches_heap(self):
        def run(queue):
            psim = ParallelSimulation(2, seed=4, queue=queue)
            a = PingPong(psim.rank_sim(0), "ping",
                         Params({"initiator": True, "n_round_trips": 15}))
            b = PingPong(psim.rank_sim(1), "pong", Params({}))
            psim.connect(a, "io", b, "io", latency="7ns")
            psim.run()
            return psim.stat_values()

        assert run("heap") == run("binned")

    def test_empty_parallel_simulation(self):
        psim = ParallelSimulation(3, seed=1)
        result = psim.run()
        assert result.reason == "exhausted"
        assert result.events_executed == 0
        assert result.epochs == 0

    def test_idle_rank_does_not_block(self):
        """Ranks with no components at all must not stall the epoch loop."""
        psim = ParallelSimulation(4, seed=1)
        src = Source(psim.rank_sim(0), "src",
                     Params({"count": 3, "period": "1ns"}))
        sink = Sink(psim.rank_sim(3), "sink")
        psim.connect(src, "out", sink, "in", latency="5ns")
        result = psim.run()
        assert result.reason == "exhausted"
        assert sink.received.count == 3

    def test_rank_sim_identity(self):
        psim = ParallelSimulation(2, seed=1)
        assert psim.rank_sim(0) is not psim.rank_sim(1)
        assert psim.rank_sim(0).rank == 0
        assert psim.rank_sim(1).num_ranks == 2
        c = Component(psim.rank_sim(1), "c")
        assert psim.rank_of(c) == 1

    def test_cross_rank_send_during_setup_delivered(self):
        """Sends made in setup() (t=0) must arrive — the exchange-first
        epoch ordering (see parallel.py)."""

        class EagerSender(Component):
            def setup(self):
                self.send("out", Event())

        psim = ParallelSimulation(2, seed=1)
        sender = EagerSender(psim.rank_sim(0), "eager")
        sink = Sink(psim.rank_sim(1), "sink")
        psim.connect(sender, "out", sink, "in", latency="3ns")
        psim.run()
        assert sink.received.count == 1
        assert sink.arrival_times == [3000]
