"""Tests for the dragonfly topology and its minimal routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigGraph, build, build_dragonfly
from repro.core import Params, Simulation
from repro.network import Router


def make_dragonfly(groups=7, a=3, h=2, p=2):
    g = ConfigGraph("df")
    topo = build_dragonfly(g, groups=groups, routers_per_group=a,
                           global_per_router=h, locals_per_router=p)
    return g, topo


class TestStructure:
    def test_component_and_link_counts(self):
        g, topo = make_dragonfly(groups=7, a=3, h=2, p=2)
        assert len(topo.router_names) == 21
        assert topo.num_endpoints == 42
        # intra: 7 groups x C(3,2)=3; inter: C(7,2)=21.
        assert g.num_links() == 7 * 3 + 21

    def test_balance_condition_enforced(self):
        g = ConfigGraph("bad")
        with pytest.raises(ValueError, match="balanced"):
            build_dragonfly(g, groups=8, routers_per_group=3,
                            global_per_router=2)

    def test_invalid_parameters(self):
        g = ConfigGraph("bad")
        with pytest.raises(ValueError):
            build_dragonfly(g, groups=0, routers_per_group=1,
                            global_per_router=1)

    def test_every_group_pair_joined_once(self):
        g, topo = make_dragonfly()
        global_links = [
            link for link in g.links()
            if link.port_a.startswith("g") and link.port_b.startswith("g")
        ]
        pairs = set()
        for link in global_links:
            group_a = int(link.comp_a.split(".g")[1].split("r")[0])
            group_b = int(link.comp_b.split(".g")[1].split("r")[0])
            pair = tuple(sorted((group_a, group_b)))
            assert pair not in pairs, f"duplicate global link {pair}"
            pairs.add(pair)
        assert len(pairs) == 21  # C(7,2)

    def test_minimal_dragonfly(self):
        # g=2, a=1, h=1: two routers, one global link.
        g, topo = make_dragonfly(groups=2, a=1, h=1, p=1)
        assert g.num_links() == 1
        assert topo.num_endpoints == 2


class TestRouting:
    def _router(self, group, index, groups=7, a=3, h=2, p=2):
        sim = Simulation()
        return Router(sim, "r", Params({
            "kind": "dragonfly", "groups": groups,
            "routers_per_group": a, "global_per_router": h, "locals": p,
            "group": group, "index": index}))

    def test_local_delivery(self):
        r = self._router(group=0, index=0)
        # endpoint 1 = group 0, router 0, terminal 1
        assert r.route(1) == "local1"

    def test_intra_group(self):
        r = self._router(group=0, index=0)
        # endpoint of group 0, router 2: 2*p = 4
        assert r.route(4) == "l2"

    def test_global_from_gateway(self):
        r = self._router(group=0, index=0)
        # dest group 1: d=1 -> gateway (1-1)//2=0 (me), port g0.
        dest = (1 * 3 + 0) * 2  # group1 router0 terminal0
        assert r.route(dest) == "g0"
        # dest group 2: d=2 -> gateway 0, port g1.
        dest = (2 * 3 + 0) * 2
        assert r.route(dest) == "g1"

    def test_local_hop_to_gateway(self):
        r = self._router(group=0, index=0)
        # dest group 3: d=3 -> gateway (3-1)//2 = 1 -> local hop l1.
        dest = (3 * 3 + 0) * 2
        assert r.route(dest) == "l1"

    @given(st.integers(0, 41), st.integers(0, 41))
    @settings(max_examples=60)
    def test_any_pair_reachable_within_three_router_hops(self, src, dest):
        """Follow the routing function hop by hop; must deliver in <= 3
        router-to-router hops (l, g, l) + terminal."""
        groups, a, h, p = 7, 3, 2, 2
        if src == dest:
            return
        router_global = src // p
        group, index = divmod(router_global, a)
        hops = 0
        while True:
            r = self._router(group=group, index=index)
            port = r.route(dest)
            if port.startswith("local"):
                break
            hops += 1
            assert hops <= 3, (src, dest)
            if port.startswith("l"):
                index = int(port[1:])
            else:  # global hop: recompute the peer (builder's wiring)
                k = int(port[1:])
                d = None
                # Find which offset this (index, k) gateway serves.
                channel = index * h + k
                d = channel + 1
                dest_group = (group + d) % groups
                d_back = (group - dest_group) % groups
                group = dest_group
                index = (d_back - 1) // h


class TestEndToEnd:
    def test_traffic_delivers(self):
        g, topo = make_dragonfly(groups=5, a=2, h=2, p=1)
        n = topo.num_endpoints
        for i in range(n):
            g.component(f"nic{i}", "network.Nic", {})
            g.component(f"ep{i}", "network.PatternEndpoint",
                        {"endpoint_id": i, "n_endpoints": n,
                         "pattern": "bitcomplement", "count": 3,
                         "size": "8KB", "gap": "5us"})
            g.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
            topo.attach(g, i, f"nic{i}", "net", latency="10ns")
        sim = build(g, seed=4)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        assert sum(values[f"ep{i}.received"] for i in range(n)) == 3 * n

    def test_global_links_slower_than_local(self):
        """Cross-group latency > intra-group latency (the dragonfly
        global-link penalty)."""
        g, topo = make_dragonfly(groups=3, a=2, h=1, p=2)
        n = topo.num_endpoints
        for i in range(n):
            g.component(f"nic{i}", "network.Nic", {})
            g.component(f"ep{i}", "network.PatternEndpoint",
                        {"endpoint_id": i, "n_endpoints": n,
                         "pattern": "neighbor", "count": 2,
                         "size": 512, "gap": "5us"})
            g.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
            topo.attach(g, i, f"nic{i}", "net", latency="10ns")
        sim = build(g, seed=4)
        assert sim.run().reason == "exit"
        stats = sim.stats()
        # ep0 -> ep1 shares a router; ep3 -> ep4 crosses into group 1.
        same_router = stats["ep1.latency_ps"].mean
        cross_group = stats["ep4.latency_ps"].mean
        assert cross_group > same_router


class TestValiantRouting:
    def _run(self, routing, pattern="shift", groups=5, a=2, h=2, p=2,
             count=3):
        g, topo = None, None
        graph = ConfigGraph(f"df-{routing}")
        topo = build_dragonfly(graph, groups=groups, routers_per_group=a,
                               global_per_router=h, locals_per_router=p,
                               router_params={"routing": routing})
        n = topo.num_endpoints
        for i in range(n):
            graph.component(f"nic{i}", "network.Nic", {})
            graph.component(f"ep{i}", "network.PatternEndpoint",
                            {"endpoint_id": i, "n_endpoints": n,
                             "pattern": pattern, "count": count,
                             "size": "8KB", "gap": "2us",
                             "shift_amount": a * p})
            graph.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
            topo.attach(graph, i, f"nic{i}", "net", latency="10ns")
        sim = build(graph, seed=6)
        result = sim.run()
        assert result.reason == "exit", (routing, result.reason)
        return sim, n

    def test_valiant_delivers_everything(self):
        sim, n = self._run("valiant")
        values = sim.stat_values()
        assert sum(values[f"ep{i}.received"] for i in range(n)) == 3 * n

    def test_valiant_takes_longer_paths(self):
        sim_min, n = self._run("minimal")
        sim_val, _ = self._run("valiant")
        hops_min = sum(sim_min.stats()[f"ep{i}.hops"].mean
                       for i in range(n)) / n
        hops_val = sum(sim_val.stats()[f"ep{i}.hops"].mean
                       for i in range(n)) / n
        assert hops_val > hops_min

    def test_valiant_bounded_hops(self):
        sim, n = self._run("valiant")
        worst = max(sim.stats()[f"ep{i}.hops"].maximum for i in range(n))
        # Valiant worst case: l g l (to via) + l g l (to dest) + deliver.
        assert worst <= 7

    def test_valiant_deterministic(self):
        a = self._run("valiant")[0].stat_values()
        b = self._run("valiant")[0].stat_values()
        assert a == b

    def test_unknown_routing_rejected(self):
        from repro.core import Params, Simulation
        from repro.network import Router

        sim = Simulation()
        with pytest.raises(ValueError, match="routing"):
            Router(sim, "r", Params({
                "kind": "dragonfly", "groups": 5, "routers_per_group": 2,
                "global_per_router": 2, "locals": 1, "group": 0,
                "index": 0, "routing": "teleport"}))
