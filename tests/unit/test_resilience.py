"""Tests for the checkpoint/restart and failure models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Params, Simulation
from repro.resilience import (BUDDY_MEMORY, LOCAL_SSD, PARALLEL_FS, TARGETS,
                              CheckpointedJob, CheckpointTarget, FailureModel,
                              daly_interval_s, expected_runtime_s,
                              simulate_job, young_interval_s)


class TestFailureModel:
    def test_system_mtbf_scales_inversely(self):
        model = FailureModel(node_mtbf_s=43800 * 3600, n_nodes=1000)
        assert model.system_mtbf_s == pytest.approx(43800 * 3.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(node_mtbf_s=0)
        with pytest.raises(ValueError):
            FailureModel(node_mtbf_s=1, n_nodes=0)


class TestCheckpointTargets:
    def test_local_ssd_scale_invariant(self):
        assert LOCAL_SSD.effective_node_bandwidth(1) == \
            LOCAL_SSD.effective_node_bandwidth(10_000)

    def test_parallel_fs_divides_at_scale(self):
        small = PARALLEL_FS.effective_node_bandwidth(4)
        large = PARALLEL_FS.effective_node_bandwidth(4096)
        assert small == PARALLEL_FS.node_bandwidth  # below the ceiling
        assert large == pytest.approx(20e9 / 4096)

    def test_crossover_with_scale(self):
        """The §3.1 motivation: PFS wins small, local SSD wins at scale."""
        state = 2 * 10**9
        assert PARALLEL_FS.checkpoint_time_ps(state, 8) < \
            LOCAL_SSD.checkpoint_time_ps(state, 8)
        assert LOCAL_SSD.checkpoint_time_ps(state, 1024) < \
            PARALLEL_FS.checkpoint_time_ps(state, 1024)

    def test_registry(self):
        assert set(TARGETS) == {"local-ssd", "parallel-fs", "buddy-memory"}

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            LOCAL_SSD.effective_node_bandwidth(0)


class TestAnalyticModel:
    def test_young_formula(self):
        assert young_interval_s(5.0, 1000.0) == pytest.approx(100.0)

    def test_daly_close_to_young_for_small_delta(self):
        daly = daly_interval_s(1.0, 10_000.0)
        young = young_interval_s(1.0, 10_000.0)
        assert daly == pytest.approx(young, rel=0.05)

    def test_daly_degenerate_regime(self):
        # delta >= 2M: checkpointing pointless, interval = MTBF.
        assert daly_interval_s(100.0, 40.0) == 40.0

    def test_expected_runtime_exceeds_work(self):
        t = expected_runtime_s(1000.0, 50.0, 5.0, 10.0, 500.0)
        assert t > 1000.0

    def test_optimum_is_a_minimum(self):
        mtbf, delta, restart, work = 300.0, 4.0, 8.0, 1000.0
        opt = daly_interval_s(delta, mtbf)
        t_opt = expected_runtime_s(work, opt, delta, restart, mtbf)
        for factor in (0.25, 0.5, 2.0, 4.0):
            t = expected_runtime_s(work, opt * factor, delta, restart, mtbf)
            assert t >= t_opt * 0.999, factor

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval_s(0, 100)
        with pytest.raises(ValueError):
            daly_interval_s(1, 0)
        with pytest.raises(ValueError):
            expected_runtime_s(0, 1, 1, 1, 1)

    @given(st.floats(0.5, 50), st.floats(100, 10_000))
    @settings(max_examples=40)
    def test_interval_scales_with_sqrt(self, delta, mtbf):
        base = young_interval_s(delta, mtbf)
        assert young_interval_s(delta * 4, mtbf) == pytest.approx(2 * base)
        assert young_interval_s(delta, mtbf * 4) == pytest.approx(2 * base)


class TestCheckpointedJob:
    def test_no_failures_pure_overhead(self):
        # MTBF far beyond the run: runtime = work + checkpoints.
        job = simulate_job(work_s=10.0, interval_s=2.0, checkpoint_s=0.5,
                           restart_s=1.0, mtbf_s=1e9)
        assert job.s_failures.count == 0
        # 5 segments, 4 checkpoints (the final segment skips it).
        assert job.runtime_ps == pytest.approx((10.0 + 4 * 0.5) * 1e12)
        assert job.s_checkpoint.count == int(4 * 0.5 * 1e12)

    def test_failures_add_rework(self):
        job = simulate_job(work_s=100.0, interval_s=5.0, checkpoint_s=0.5,
                           restart_s=2.0, mtbf_s=30.0, seed=5)
        assert job.s_failures.count > 0
        assert job.s_rework.count > 0
        assert job.runtime_ps > 100e12

    def test_deterministic_given_seed(self):
        a = simulate_job(work_s=50.0, interval_s=5.0, checkpoint_s=0.5,
                         restart_s=2.0, mtbf_s=40.0, seed=7)
        b = simulate_job(work_s=50.0, interval_s=5.0, checkpoint_s=0.5,
                         restart_s=2.0, mtbf_s=40.0, seed=7)
        assert a.runtime_ps == b.runtime_ps
        assert a.s_failures.count == b.s_failures.count

    def test_simulation_tracks_daly_model(self):
        """Mean simulated completion within ~15% of Daly's expectation."""
        mtbf, delta, restart, work = 200.0, 5.0, 10.0, 500.0
        interval = daly_interval_s(delta, mtbf)
        analytic = expected_runtime_s(work, interval, delta, restart, mtbf)
        runtimes = [
            simulate_job(work_s=work, interval_s=interval, checkpoint_s=delta,
                         restart_s=restart, mtbf_s=mtbf, seed=s).runtime_ps
            for s in range(8)
        ]
        mean = sum(runtimes) / len(runtimes) / 1e12
        assert mean == pytest.approx(analytic, rel=0.15)

    def test_interval_sweep_minimum_near_daly(self):
        """The simulated optimum lies near the analytic optimum."""
        mtbf, delta, restart, work = 150.0, 4.0, 8.0, 400.0
        opt = daly_interval_s(delta, mtbf)
        candidates = [opt / 4, opt, opt * 4]

        def mean_runtime(interval):
            runs = [simulate_job(work_s=work, interval_s=interval,
                                 checkpoint_s=delta, restart_s=restart,
                                 mtbf_s=mtbf, seed=s).runtime_ps
                    for s in range(6)]
            return sum(runs) / len(runs)

        times = [mean_runtime(i) for i in candidates]
        assert times[1] == min(times)

    def test_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            CheckpointedJob(sim, "bad", Params({"work": 0}))

    def test_runaway_failure_guard(self):
        sim = Simulation(seed=1)
        job = CheckpointedJob(sim, "doomed", Params({
            "work": int(10e12), "interval": int(1e12),
            "checkpoint_time": int(0.1e12), "restart_time": int(0.5e12),
            "mtbf": int(0.2e12),  # fails constantly
            "max_failures": 50,
        }))
        with pytest.raises(RuntimeError, match="max_failures"):
            sim.run()
