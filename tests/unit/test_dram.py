"""Tests for DRAM models, controller scheduling, node memory and the bus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Params, Simulation
from repro.memory import (TECHNOLOGIES, BandwidthShare, DRAMModel,
                          MainMemory, MemController, MemRequest, NodeMemory,
                          SchedulingDRAM, SharedBus, SimpleMemory, tech)
from repro.processor import TrafficGenerator


class TestTechnologyTable:
    def test_expected_technologies_present(self):
        for name in ("DDR2-800", "DDR3-800", "DDR3-1066", "DDR3-1333",
                     "DDR3-1600", "GDDR5"):
            assert name in TECHNOLOGIES

    def test_relative_ordering(self):
        """The property the design-space study rests on: bandwidth
        GDDR5 >> DDR3 > DDR2; background power GDDR5 >> DDR3; $/GB
        GDDR5 > DDR3."""
        ddr2 = tech("DDR2-800")
        ddr3 = tech("DDR3-1333")
        gddr5 = tech("GDDR5")
        assert gddr5.peak_bw_bytes_per_s > 4 * ddr3.peak_bw_bytes_per_s
        assert ddr3.peak_bw_bytes_per_s > ddr2.peak_bw_bytes_per_s
        assert gddr5.background_power_w > 3 * ddr3.background_power_w
        assert gddr5.cost_per_gb > 1.5 * ddr3.cost_per_gb

    def test_ddr3_speed_grades_ordered(self):
        grades = ["DDR3-800", "DDR3-1066", "DDR3-1333", "DDR3-1600"]
        bws = [tech(g).peak_bw_bytes_per_s for g in grades]
        assert bws == sorted(bws)

    def test_unknown_tech_raises(self):
        with pytest.raises(KeyError):
            tech("HBM9")


class TestDRAMModel:
    def test_row_hit_faster_than_miss(self):
        m = DRAMModel("DDR3-1333")
        t1 = m.request(0, 0x0, 64)  # cold: row miss
        t2 = m.request(t1, 0x40, 64)  # same row: hit
        assert m.stats.row_hits == 1
        assert m.stats.row_misses == 1
        miss_latency = t1 - 0
        hit_latency = t2 - t1
        assert hit_latency < miss_latency

    def test_bank_conflict_serialises(self):
        m = DRAMModel("DDR3-1333")
        row = m.tech.row_bytes
        banks = m.tech.n_banks
        # Same bank, different rows -> conflict; different banks overlap.
        t_same = m.request(0, 0, 64)
        t_conflict = m.request(0, row * banks, 64)  # same bank, next row
        assert t_conflict > t_same
        m2 = DRAMModel("DDR3-1333")
        m2.request(0, 0, 64)
        t_other_bank = m2.request(0, row, 64)
        # Other-bank access is limited only by channel transfer overlap.
        assert t_other_bank <= t_conflict

    def test_bandwidth_serialisation(self):
        m = DRAMModel("DDR3-1333")
        # Saturate by issuing everything at t=0 (pipelined): achieved
        # bandwidth approaches (but cannot exceed) peak.
        end = 0
        for i in range(200):
            end = max(end, m.request(0, i * 64, 64))
        achieved = m.achieved_bandwidth(end)
        assert achieved <= m.peak_bandwidth * 1.01
        assert achieved > m.peak_bandwidth * 0.7

    def test_serial_dependent_stream_is_latency_bound(self):
        m = DRAMModel("DDR3-1333")
        now = 0
        for i in range(100):
            now = m.request(now, i * 64, 64)
        # Issuing each request only after the last completes exposes the
        # access latency: achieved bandwidth is far below peak.
        assert m.achieved_bandwidth(now) < m.peak_bandwidth * 0.5

    def test_channels_multiply_bandwidth(self):
        assert DRAMModel("DDR3-1333", channels=4).peak_bandwidth == \
            pytest.approx(4 * DRAMModel("DDR3-1333").peak_bandwidth)

    def test_energy_components(self):
        m = DRAMModel("DDR3-1333")
        end = m.request(0, 0, 64)
        dynamic_only = m.stats.dynamic_energy_pj
        assert dynamic_only > 0
        total = m.energy_joules(elapsed_ps=10**12)  # 1 second
        assert total > m.tech.background_power_w * 0.99

    def test_average_power_zero_time(self):
        assert DRAMModel().average_power_w(0) == 0.0

    def test_cost(self):
        m = DRAMModel("GDDR5")
        assert m.cost_dollars(4.0) == pytest.approx(4 * m.tech.cost_per_gb)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            DRAMModel(channels=0)

    @given(st.lists(st.integers(0, 1 << 26), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_completions_monotone_nondecreasing(self, addrs):
        m = DRAMModel("DDR3-1333")
        now = 0
        for a in addrs:
            done = m.request(now, a, 64)
            assert done > now  # strictly after issue
            now = done
        assert m.stats.requests == len(addrs)
        assert m.stats.row_hits + m.stats.row_misses == len(addrs)


class TestSchedulingDRAM:
    def test_fcfs_preserves_order(self):
        s = SchedulingDRAM(policy="fcfs")
        for i, addr in enumerate([0, 8192, 64, 16384]):
            s.submit(0, addr, 64, payload=i)
        done = s.drain_all()
        assert [p for _, p in done] == [0, 1, 2, 3]

    def test_frfcfs_prefers_open_rows(self):
        s = SchedulingDRAM(policy="frfcfs", window=8)
        row = s.model.tech.row_bytes * s.model.tech.n_banks
        # First request opens row 0 of bank 0; then a same-bank
        # different-row request, then a row-0 hit.
        s.submit(0, 0, 64, payload="open")
        s.submit(0, row, 64, payload="conflict")
        s.submit(0, 64, 64, payload="hit")
        done = s.drain_all()
        order = [p for _, p in done]
        assert order.index("hit") < order.index("conflict")
        assert s.reordered >= 1

    def test_frfcfs_total_time_not_worse(self):
        def run(policy):
            s = SchedulingDRAM(policy=policy)
            row = s.model.tech.row_bytes * s.model.tech.n_banks
            addrs = []
            for i in range(20):
                addrs += [i * 64, row + i * 64]  # interleaved row conflict
            for a in addrs:
                s.submit(0, a, 64)
            done = s.drain_all()
            return max(t for t, _ in done)

        assert run("frfcfs") <= run("fcfs")

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            SchedulingDRAM(policy="lifo")
        with pytest.raises(ValueError):
            SchedulingDRAM(window=0)

    def test_drain_until_respects_arrival(self):
        s = SchedulingDRAM()
        s.submit(100, 0, 64, payload="early")
        s.submit(10**9, 64, 64, payload="late")
        done = s.drain_until(200)
        assert [p for _, p in done] == ["early"]
        assert s.pending == 1


class TestMemoryComponents:
    def _run(self, mem_type, mem_params, requests=32):
        sim = Simulation(seed=4)
        cpu = TrafficGenerator(sim, "cpu", Params({
            "requests": requests, "pattern": "stream", "stride": 64,
            "outstanding": 4,
        }))
        mem = mem_type(sim, "mem", Params(mem_params))
        sim.connect(cpu, "mem", mem, "cpu", latency="2ns")
        result = sim.run()
        assert result.reason == "exit"
        return sim, cpu, mem

    def test_simple_memory_fixed_latency(self):
        sim, cpu, mem = self._run(SimpleMemory, {"latency": "60ns"},
                                  requests=8)
        assert mem.s_requests.count == 8
        # Round trip: 2ns + 60ns + 2ns.
        assert cpu.s_latency.minimum == 64_000

    def test_main_memory_serves_all(self):
        sim, cpu, mem = self._run(MainMemory, {"technology": "DDR3-1333"})
        assert cpu.s_completed.count == 32
        assert mem.s_reads.count == 32
        assert mem.model.stats.requests == 32

    def test_main_memory_gddr5_faster_for_streams(self):
        def total_runtime(technology):
            sim, cpu, _ = self._run(MainMemory, {"technology": technology},
                                    requests=128)
            return cpu.s_runtime.count

        assert total_runtime("GDDR5") < total_runtime("DDR2-800")

    def test_controller_component(self):
        sim, cpu, ctrl = self._run(MemController,
                                   {"technology": "DDR3-1333",
                                    "policy": "frfcfs"})
        assert cpu.s_completed.count == 32
        assert ctrl.s_requests.count == 32


class TestBandwidthShare:
    def test_uncontended(self):
        share = BandwidthShare(10e9)
        assert share.slowdown(1, 5e9) == 1.0

    def test_contended_slowdown(self):
        share = BandwidthShare(10e9)
        # 4 clients at 5GB/s each want 20 over 10 -> each gets 2.5.
        assert share.slowdown(4, 5e9) == pytest.approx(2.0)

    def test_phase_time_amdahl_split(self):
        share = BandwidthShare(10e9)
        # Fully compute-bound phase is unaffected.
        assert share.phase_time(1.0, 0.0, 8, 5e9) == 1.0
        # Fully bandwidth-bound phase scales with the slowdown.
        assert share.phase_time(1.0, 1.0, 4, 5e9) == pytest.approx(2.0)
        # Half-bound splits the difference.
        assert share.phase_time(1.0, 0.5, 4, 5e9) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthShare(0)
        share = BandwidthShare(1e9)
        with pytest.raises(ValueError):
            share.effective_bandwidth(0, 1e9)
        with pytest.raises(ValueError):
            share.phase_time(1.0, 1.5, 1, 1e9)


class TestSharedBus:
    def test_two_clients_share_and_route_back(self):
        sim = Simulation(seed=4)
        cpus = [
            TrafficGenerator(sim, f"cpu{i}", Params({
                "requests": 16, "pattern": "stream", "stride": 64,
                "outstanding": 2,
            }))
            for i in range(2)
        ]
        bus = SharedBus(sim, "bus", Params({"n_ports": 2,
                                            "bandwidth": "10GB/s"}))
        mem = SimpleMemory(sim, "mem", Params({"latency": "50ns"}))
        for i, cpu in enumerate(cpus):
            sim.connect(cpu, "mem", bus, f"cpu{i}", latency="1ns")
        sim.connect(bus, "mem", mem, "cpu", latency="1ns")
        result = sim.run()
        assert result.reason == "exit"
        for cpu in cpus:
            assert cpu.s_completed.count == 16
        assert bus.s_transfers.count == 64  # 32 requests + 32 responses

    def test_contention_slows_clients(self):
        def runtime(n_clients):
            sim = Simulation(seed=4)
            cpus = [
                TrafficGenerator(sim, f"cpu{i}", Params({
                    "requests": 64, "pattern": "stream", "stride": 64,
                    "outstanding": 8, "size": 4096,
                }))
                for i in range(n_clients)
            ]
            bus = SharedBus(sim, "bus", Params({
                "n_ports": n_clients, "bandwidth": "2GB/s"}))
            mem = SimpleMemory(sim, "mem", Params({"latency": "10ns"}))
            for i, cpu in enumerate(cpus):
                sim.connect(cpu, "mem", bus, f"cpu{i}", latency="1ns")
            sim.connect(bus, "mem", mem, "cpu", latency="1ns")
            sim.run()
            return max(c.s_runtime.count for c in cpus)

        assert runtime(4) > 1.5 * runtime(1)


class TestNodeMemory:
    def test_bulk_contention_between_cores(self):
        from repro.processor import MixCore

        def runtime(n_cores, technology="DDR3-1333"):
            sim = Simulation(seed=4)
            mem = NodeMemory(sim, "mem", Params({
                "technology": technology, "n_ports": n_cores}))
            cores = []
            for i in range(n_cores):
                core = MixCore(sim, f"core{i}", Params({
                    "workload": "hpccg", "instructions": 500_000,
                    "issue_width": 4}))
                sim.connect(core, "mem", mem, f"core{i}", latency="1ns")
                cores.append(core)
            result = sim.run()
            assert result.reason == "exit"
            return max(c.runtime_ps() for c in cores)

        solo = runtime(1)
        contended = runtime(4)
        assert contended > 1.3 * solo  # bandwidth split across 4 cores

    def test_technology_advertised_to_cores(self):
        from repro.processor import MixCore

        sim = Simulation(seed=4)
        core = MixCore(sim, "core0", Params({"workload": "hpccg",
                                             "instructions": 100_000}))
        mem = NodeMemory(sim, "mem", Params({"technology": "GDDR5",
                                             "n_ports": 1}))
        sim.connect(core, "mem", mem, "core0", latency="1ns")
        sim.setup()
        assert core._dram_tech().name == "GDDR5"
