"""Unit + property tests for the component-graph partitioner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (STRATEGIES, PartitionEdge, evaluate,
                                  partition)


def ring_edges(n, latency=10):
    return [PartitionEdge(i, (i + 1) % n, latency=latency) for i in range(n)]


def grid_nodes_edges(width, height):
    nodes = [(x, y) for y in range(height) for x in range(width)]
    edges = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append(PartitionEdge((x, y), (x + 1, y)))
            if y + 1 < height:
                edges.append(PartitionEdge((x, y), (x, y + 1)))
    return nodes, edges


class TestBasics:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_nodes_assigned(self, strategy):
        nodes = list(range(20))
        result = partition(nodes, ring_edges(20), 4, strategy=strategy)
        assert set(result.assignment) == set(nodes)
        assert all(0 <= r < 4 for r in result.assignment.values())

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_rank_is_trivial(self, strategy):
        result = partition(list(range(5)), ring_edges(5), 1, strategy=strategy)
        assert set(result.assignment.values()) == {0}
        assert result.edge_cut == 0

    def test_more_ranks_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            partition([1, 2], [], 3)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            partition([1], [], 0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            partition([1, 2], [], 2, strategy="magic")

    def test_unknown_edge_node_rejected(self):
        with pytest.raises(ValueError):
            partition([1, 2], [PartitionEdge(1, 99)], 2)

    def test_linear_keeps_contiguous_slices(self):
        nodes = list(range(12))
        result = partition(nodes, ring_edges(12), 4, strategy="linear")
        # Linear on a ring: each rank gets one contiguous run of 3.
        for rank in range(4):
            members = [n for n, r in result.assignment.items() if r == rank]
            assert members == list(range(min(members), max(members) + 1))

    def test_round_robin_alternates(self):
        result = partition(list(range(6)), [], 2, strategy="round_robin")
        assert [result.assignment[i] for i in range(6)] == [0, 1, 0, 1, 0, 1]


class TestQualityMetrics:
    def test_ring_linear_cut(self):
        # A 16-ring split linearly into 4 slices cuts exactly 4 edges.
        result = partition(list(range(16)), ring_edges(16), 4, strategy="linear")
        assert result.cut_edges == 4

    def test_round_robin_cut_is_worst(self):
        nodes = list(range(16))
        edges = ring_edges(16)
        rr = partition(nodes, edges, 4, strategy="round_robin")
        lin = partition(nodes, edges, 4, strategy="linear")
        assert rr.cut_edges > lin.cut_edges

    def test_kl_not_worse_than_bfs_on_grid(self):
        nodes, edges = grid_nodes_edges(8, 8)
        bfs = partition(nodes, edges, 4, strategy="bfs")
        kl = partition(nodes, edges, 4, strategy="kl")
        assert kl.edge_cut <= bfs.edge_cut

    def test_min_cut_latency_reported(self):
        nodes = [0, 1, 2, 3]
        edges = [PartitionEdge(0, 1, latency=100), PartitionEdge(1, 2, latency=5),
                 PartitionEdge(2, 3, latency=50)]
        result = partition(nodes, edges, 2, strategy="round_robin")
        # round_robin: 0,2 -> rank0; 1,3 -> rank1; all edges cut.
        assert result.min_cut_latency == 5

    def test_no_cut_edges_latency_none(self):
        result = partition([0, 1], [PartitionEdge(0, 1)], 1)
        assert result.min_cut_latency is None

    def test_imbalance_weighted(self):
        weights = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0}
        result = partition([0, 1, 2, 3], [], 2, strategy="round_robin",
                           weights=weights)
        # rank0 = {0, 2} weight 11, ideal 6.5
        assert result.imbalance == pytest.approx(11 / 6.5)

    def test_evaluate_standalone(self):
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        edges = [PartitionEdge(0, 1), PartitionEdge(1, 2), PartitionEdge(2, 3)]
        result = evaluate(assignment, edges)
        assert result.cut_edges == 1
        assert result.edge_cut == 1.0

    def test_ranks_grouping(self):
        result = partition(list(range(4)), [], 2, strategy="round_robin")
        groups = result.ranks()
        assert groups[0] == [0, 2]
        assert groups[1] == [1, 3]


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        ranks=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(STRATEGIES),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80)
    def test_partition_is_complete_and_disjoint(self, n, ranks, strategy, seed):
        if ranks > n:
            ranks = n
        import random

        rng = random.Random(seed)
        nodes = list(range(n))
        edges = [
            PartitionEdge(rng.randrange(n), rng.randrange(n),
                          latency=rng.randint(1, 100))
            for _ in range(min(n * 2, 80))
        ]
        edges = [e for e in edges if e.u != e.v]
        result = partition(nodes, edges, ranks, strategy=strategy)
        # Complete: every node exactly once.
        assert set(result.assignment) == set(nodes)
        # Valid ranks.
        assert all(0 <= r < ranks for r in result.assignment.values())
        # Metrics internally consistent.
        recomputed = evaluate(result.assignment, edges, num_ranks=ranks)
        assert recomputed.cut_edges == result.cut_edges
        assert recomputed.edge_cut == result.edge_cut

    @given(
        n=st.integers(min_value=4, max_value=40),
        ranks=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=40)
    def test_deterministic(self, n, ranks):
        nodes = list(range(n))
        edges = ring_edges(n)
        a = partition(nodes, edges, ranks, strategy="kl")
        b = partition(nodes, edges, ranks, strategy="kl")
        assert a.assignment == b.assignment
