"""Unit + property tests for statistics collectors."""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.statistics import (Accumulator, Counter, Histogram,
                                   StatisticGroup)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestCounter:
    def test_starts_zero(self):
        assert Counter("c").count == 0

    def test_add(self):
        c = Counter("c")
        c.add()
        c.add(5)
        assert c.count == 6
        assert c.value() == 6.0

    def test_merge(self):
        a, b = Counter("c"), Counter("c")
        a.add(3)
        b.add(4)
        a.merge(b)
        assert a.count == 7

    def test_merge_name_mismatch(self):
        with pytest.raises(ValueError):
            Counter("a").merge(Counter("b"))

    def test_merge_type_mismatch(self):
        with pytest.raises(TypeError):
            Counter("a").merge(Accumulator("a"))

    def test_reset(self):
        c = Counter("c")
        c.add(10)
        c.reset()
        assert c.count == 0


class TestAccumulator:
    def test_empty(self):
        a = Accumulator("a")
        assert a.count == 0
        assert a.mean == 0.0
        assert a.stddev == 0.0

    def test_stats(self):
        a = Accumulator("a")
        for v in (1.0, 2.0, 3.0, 4.0):
            a.add(v)
        assert a.count == 4
        assert a.mean == 2.5
        assert a.minimum == 1.0
        assert a.maximum == 4.0
        assert a.variance == pytest.approx(1.25)
        assert a.stddev == pytest.approx(math.sqrt(1.25))

    def test_as_dict(self):
        a = Accumulator("a")
        a.add(2.0)
        d = a.as_dict()
        assert d["count"] == 1
        assert d["mean"] == 2.0
        assert d["min"] == 2.0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_batch_computation(self, values):
        a = Accumulator("a")
        for v in values:
            a.add(v)
        assert a.count == len(values)
        assert a.total == pytest.approx(sum(values), rel=1e-9, abs=1e-6)
        assert a.minimum == min(values)
        assert a.maximum == max(values)
        batch_mean = sum(values) / len(values)
        assert a.mean == pytest.approx(batch_mean, rel=1e-9, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_equals_combined(self, left, right):
        a, b, combined = Accumulator("x"), Accumulator("x"), Accumulator("x")
        for v in left:
            a.add(v)
            combined.add(v)
        for v in right:
            b.add(v)
            combined.add(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total, rel=1e-9, abs=1e-6)
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_empty_into_populated_keeps_extrema(self):
        # Regression: an idle rank's empty accumulator carries the
        # sentinel +/-inf extrema — merging it must not disturb min/max.
        a, empty = Accumulator("x"), Accumulator("x")
        a.add(3.0)
        a.add(7.0)
        a.merge(empty)
        assert a.count == 2
        assert a.minimum == 3.0
        assert a.maximum == 7.0

    def test_merge_populated_into_empty(self):
        a, b = Accumulator("x"), Accumulator("x")
        b.add(5.0)
        a.merge(b)
        assert a.count == 1
        assert a.minimum == 5.0
        assert a.maximum == 5.0

    def test_merge_empty_into_empty_no_inf_in_as_dict(self):
        # Regression: the inf sentinels must never leak into the
        # JSON-facing form (json.dumps rejects Infinity under
        # allow_nan=False, and manifests embed these dicts).
        a, b = Accumulator("x"), Accumulator("x")
        a.merge(b)
        d = a.as_dict()
        assert d["min"] is None
        assert d["max"] is None
        assert not any(isinstance(v, float) and math.isinf(v)
                       for v in d.values())
        json.dumps(d, allow_nan=False)


class TestHistogram:
    def test_binning(self):
        h = Histogram("h", low=0.0, bin_width=10.0, n_bins=4)
        for v in (5, 15, 15, 35):
            h.add(v)
        assert h.bins == [1, 2, 0, 1]
        assert h.count == 4

    def test_under_overflow(self):
        h = Histogram("h", low=0.0, bin_width=1.0, n_bins=2)
        h.add(-5)
        h.add(100)
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.count == 2

    def test_weighted_add(self):
        h = Histogram("h", low=0.0, bin_width=1.0, n_bins=4)
        h.add(1.5, weight=10)
        assert h.bins[1] == 10
        assert h.count == 10

    def test_mean(self):
        h = Histogram("h", low=0.0, bin_width=1.0, n_bins=10)
        h.add(2.0)
        h.add(4.0)
        assert h.mean == 3.0

    def test_percentile(self):
        h = Histogram("h", low=0.0, bin_width=1.0, n_bins=10)
        for v in range(10):
            h.add(v + 0.5)
        assert h.percentile(0.5) == pytest.approx(4.5, abs=1.0)
        assert h.percentile(1.0) == pytest.approx(9.5, abs=1.0)

    def test_percentile_bounds(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_percentile_interpolates_within_bin(self):
        # All mass in one bin: the answer moves through the bin with the
        # requested fraction instead of snapping to an edge.
        h = Histogram("h", low=0.0, bin_width=10.0, n_bins=4)
        h.add(5.0, weight=100)  # bin [0, 10)
        assert h.percentile(0.25) == pytest.approx(2.5)
        assert h.percentile(0.5) == pytest.approx(5.0)
        assert h.percentile(1.0) == pytest.approx(10.0)

    def test_percentile_interpolates_across_bins(self):
        h = Histogram("h", low=0.0, bin_width=10.0, n_bins=4)
        h.add(5.0, weight=10)   # [0, 10)
        h.add(15.0, weight=30)  # [10, 20)
        # p50: 20 of 40 -> 10 into the 30-strong second bin.
        assert h.percentile(0.5) == pytest.approx(10.0 + (10 / 30) * 10.0)

    def test_percentile_all_overflow_returns_top_edge(self):
        # Regression: every sample above the binned range used to fall
        # off the end of the scan; the top edge is the defined answer.
        h = Histogram("h", low=0.0, bin_width=10.0, n_bins=4)
        h.add(1000.0, weight=7)
        assert h.percentile(0.5) == 40.0
        assert h.percentile(0.99) == 40.0

    def test_percentile_all_underflow_clamps_to_low(self):
        h = Histogram("h", low=10.0, bin_width=1.0, n_bins=4)
        h.add(-5.0, weight=3)
        assert h.percentile(0.5) == 10.0

    def test_percentile_monotonic_in_fraction(self):
        h = Histogram("h", low=0.0, bin_width=5.0, n_bins=8)
        for v in (-1, 2, 2, 7, 12, 17, 22, 39, 99):
            h.add(v)
        fractions = [i / 20 for i in range(21)]
        values = [h.percentile(f) for f in fractions]
        assert values == sorted(values)

    def test_merge_compatible(self):
        a = Histogram("h", 0.0, 1.0, 4)
        b = Histogram("h", 0.0, 1.0, 4)
        a.add(0.5)
        b.add(2.5)
        a.merge(b)
        assert a.bins == [1, 0, 1, 0]
        assert a.count == 2

    def test_merge_incompatible_binning(self):
        a = Histogram("h", 0.0, 1.0, 4)
        b = Histogram("h", 0.0, 2.0, 4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            Histogram("h", bin_width=0)
        with pytest.raises(ValueError):
            Histogram("h", n_bins=0)

    def test_bin_edges(self):
        h = Histogram("h", low=10.0, bin_width=5.0, n_bins=2)
        assert h.bin_edges() == [10.0, 15.0, 20.0]

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=0, max_size=100))
    def test_total_count_conserved(self, values):
        h = Histogram("h", low=20.0, bin_width=5.0, n_bins=8)
        for v in values:
            h.add(v)
        assert sum(h.bins) + h.underflow + h.overflow == len(values)


class TestStatisticGroup:
    def test_register_and_fetch(self):
        g = StatisticGroup()
        c = g.counter("hits")
        assert g.get("hits") is c
        assert "hits" in g
        assert len(g) == 1

    def test_reregister_same_type_returns_existing(self):
        g = StatisticGroup()
        a = g.counter("x")
        b = g.counter("x")
        assert a is b

    def test_reregister_different_type_raises(self):
        g = StatisticGroup()
        g.counter("x")
        with pytest.raises(ValueError):
            g.accumulator("x")

    def test_all_returns_copy(self):
        g = StatisticGroup()
        g.counter("x")
        d = g.all()
        d.clear()
        assert len(g) == 1


class TestCopyEmpty:
    """copy_empty() is what lets cross-rank merges build fresh targets."""

    def test_counter(self):
        c = Counter("c")
        c.add(5)
        fresh = c.copy_empty()
        assert fresh.name == "c" and fresh.count == 0
        fresh.merge(c)
        assert fresh.count == 5 and c.count == 5

    def test_accumulator(self):
        a = Accumulator("a")
        a.add(1.0)
        fresh = a.copy_empty()
        assert fresh.count == 0
        assert math.isinf(fresh.minimum)

    def test_histogram_preserves_binning(self):
        h = Histogram("h", low=2.0, bin_width=3.0, n_bins=5)
        h.add(4.0)
        fresh = h.copy_empty()
        assert (fresh.low, fresh.bin_width, fresh.n_bins) == (2.0, 3.0, 5)
        assert fresh.count == 0
        fresh.merge(h)  # compatible by construction
        assert fresh.count == 1
