"""Tests for the event-trace logging facility."""

import io

import pytest

from repro.core import (Component, EventTraceLog, Params, Simulation,
                        describe_handler)
from repro.core.tracelog import EventTraceLog as _ETL
from tests.conftest import Sink, Source


def _machine(seed=2, count=5):
    sim = Simulation(seed=seed)
    src = Source(sim, "src", Params({"count": count, "period": "2ns"}))
    sink = Sink(sim, "sink")
    sim.connect(src, "out", sink, "in", latency="1ns")
    return sim, src, sink


class TestDescribeHandler:
    def test_port_handler(self):
        sim, src, sink = _machine()
        port = sink.port("in")
        assert describe_handler(port.deliver) == "sink.in"

    def test_clock_handler(self):
        sim = Simulation()
        comp = Component(sim, "c")
        clock = comp.register_clock("1GHz", lambda cycle: True)
        assert describe_handler(clock._tick) == "clock:c.clock"

    def test_none(self):
        assert describe_handler(None) == "<none>"

    def test_plain_function(self):
        def fn(event):
            pass

        assert describe_handler(fn) == "fn"


class TestEventTraceLog:
    def test_records_every_event_in_memory(self):
        sim, src, sink = _machine(count=5)
        log = EventTraceLog(sim)
        sim.run()
        # 5 source timer callbacks + 5 deliveries.
        assert log.total_events == 10
        assert log.matched_events == 10
        assert len(log.records) == 10
        times = [t for t, _, _ in log.records]
        assert times == sorted(times)

    def test_component_filter(self):
        sim, src, sink = _machine(count=5)
        log = EventTraceLog(sim, component_filter="sink.*")
        sim.run()
        assert log.total_events == 10
        assert log.matched_events == 5
        assert all(target == "sink.in" for _, target, _ in log.records)

    def test_stream_sink(self):
        sim, src, sink = _machine(count=3)
        buffer = io.StringIO()
        log = EventTraceLog(sim, buffer)
        sim.run()
        log.detach()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 6
        assert "sink.in" in buffer.getvalue()
        assert "Token" in buffer.getvalue()

    def test_file_sink(self, tmp_path):
        sim, src, sink = _machine(count=3)
        path = tmp_path / "trace.log"
        with EventTraceLog(sim, path, component_filter="sink.*"):
            sim.run()
        content = path.read_text()
        assert content.count("sink.in") == 3

    def test_max_records_caps_storage_not_counting(self):
        sim, src, sink = _machine(count=20)
        log = EventTraceLog(sim, max_records=5)
        sim.run()
        assert len(log.records) == 5
        assert log.matched_events == 40

    def test_detach_stops_observing(self):
        sim, src, sink = _machine(count=10)
        log = EventTraceLog(sim)
        sim.run(max_events=4)
        log.detach()
        sim.run()
        assert log.total_events == 4

    def test_no_observer_no_cost_path(self):
        sim, src, sink = _machine(count=3)
        assert sim._trace_fn is None
        sim.run()
        assert sink.received.count == 3

    def test_validation(self):
        sim, *_ = _machine()
        with pytest.raises(ValueError):
            EventTraceLog(sim, max_records=0)


class TestTruncation:
    def test_counts_keep_running_past_cap(self):
        sim, src, sink = _machine(count=10)
        log = EventTraceLog(sim, max_records=4)
        sim.run()
        # 10 timer callbacks + 10 deliveries matched; only 4 recorded.
        assert log.matched_events == 20
        assert log.records_written == 4
        assert len(log.records) == 4
        assert log.truncated

    def test_not_truncated_below_cap(self):
        sim, src, sink = _machine(count=2)
        log = EventTraceLog(sim, max_records=100)
        sim.run()
        assert not log.truncated
        assert log.matched_events == log.records_written == 4

    def test_stream_sink_gets_trailing_marker(self):
        sim, src, sink = _machine(count=10)
        buffer = io.StringIO()
        log = EventTraceLog(sim, buffer, max_records=3)
        sim.run()
        log.detach()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 4  # 3 records + the marker
        assert lines[-1] == "... truncated (20 matched, 3 recorded)"

    def test_marker_written_once_on_double_detach(self):
        sim, src, sink = _machine(count=10)
        buffer = io.StringIO()
        log = EventTraceLog(sim, buffer, max_records=3)
        sim.run()
        log.detach()
        log.detach()
        assert buffer.getvalue().count("... truncated") == 1

    def test_untruncated_file_has_no_marker(self, tmp_path):
        sim, src, sink = _machine(count=3)
        path = tmp_path / "trace.log"
        with EventTraceLog(sim, path):
            sim.run()
        assert "truncated" not in path.read_text()


class TestCliTrace:
    def test_run_with_trace_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.config import ConfigGraph, save

        graph = ConfigGraph("m")
        graph.component("src", "testlib.Source", {"count": 4, "period": "2ns"})
        graph.component("sink", "testlib.Sink")
        graph.link("src", "out", "sink", "in", latency="1ns")
        config = tmp_path / "m.json"
        save(graph, config)
        trace = tmp_path / "events.log"
        assert main(["run", str(config), "--trace", str(trace),
                     "--trace-filter", "sink.*"]) == 0
        out = capsys.readouterr().out
        assert "trace: 4 events (of 8)" in out
        assert trace.read_text().count("sink.in") == 4
