"""Tests for cache models: functional arrays, hierarchies, the component."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Params, Simulation
from repro.memory import (Cache, CacheArray, CacheHierarchy, LevelSpec,
                          MemRequest, MemResponse, SimpleMemory)
from repro.processor import TrafficGenerator


class TestCacheArray:
    def test_cold_miss_then_hit(self):
        c = CacheArray(1024, line_size=64, ways=2)
        hit, wb = c.access(0x100)
        assert not hit and wb is None
        hit, wb = c.access(0x100)
        assert hit

    def test_same_line_different_words_hit(self):
        c = CacheArray(1024, line_size=64, ways=2)
        c.access(0x100)
        hit, _ = c.access(0x13F)  # same 64B line
        assert hit
        hit, _ = c.access(0x140)  # next line
        assert not hit

    def test_lru_eviction_order(self):
        # 2-way, map three lines to the same set; the least recently
        # used one is evicted.
        c = CacheArray(128, line_size=64, ways=2)  # 1 set of 2 ways
        c.access(0x000)
        c.access(0x040)
        c.access(0x000)  # refresh line 0
        c.access(0x080)  # evicts 0x040
        assert c.probe(0x000)
        assert not c.probe(0x040)
        assert c.probe(0x080)

    def test_dirty_writeback_address(self):
        c = CacheArray(128, line_size=64, ways=2)
        c.access(0x000, is_write=True)
        c.access(0x040)
        _, wb = c.access(0x080)  # evicts dirty 0x000
        assert wb == 0x000
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = CacheArray(128, line_size=64, ways=2)
        c.access(0x000)
        c.access(0x040)
        _, wb = c.access(0x080)
        assert wb is None

    def test_write_hit_marks_dirty(self):
        c = CacheArray(128, line_size=64, ways=2)
        c.access(0x000)          # clean fill
        c.access(0x000, True)    # write hit -> dirty
        c.access(0x040)
        _, wb = c.access(0x080)
        assert wb == 0x000

    def test_invalidate(self):
        c = CacheArray(1024, line_size=64, ways=2)
        c.access(0x100)
        assert c.invalidate(0x100)
        assert not c.probe(0x100)
        assert not c.invalidate(0x100)

    def test_flush_counts_dirty(self):
        c = CacheArray(1024, line_size=64, ways=2)
        c.access(0x000, True)
        c.access(0x040, True)
        c.access(0x080, False)
        assert c.flush() == 2
        assert not c.probe(0x000)

    def test_stats_identity(self):
        c = CacheArray(1024, line_size=64, ways=2)
        for addr in (0, 64, 0, 128, 64, 0):
            c.access(addr)
        s = c.stats
        assert s.accesses == 6
        assert s.hits + s.misses == s.accesses
        assert s.hit_rate == s.hits / 6

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheArray(1000, line_size=64, ways=2)  # not power-of-two sets
        with pytest.raises(ValueError):
            CacheArray(1024, line_size=60, ways=2)
        with pytest.raises(ValueError):
            CacheArray(64, line_size=64, ways=2)  # smaller than ways*line

    def test_block_addr(self):
        c = CacheArray(1024, line_size=64, ways=2)
        assert c.block_addr(0x13F) == 0x100
        assert c.block_addr(0x140) == 0x140

    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()),
                    min_size=1, max_size=400))
    @settings(max_examples=60)
    def test_invariants_hold_for_any_stream(self, stream):
        c = CacheArray(4096, line_size=64, ways=4)
        writebacks = 0
        for addr, is_write in stream:
            hit, wb = c.access(addr, is_write)
            if wb is not None:
                writebacks += 1
                assert wb % 64 == 0
            # After any access the line must be resident.
            assert c.probe(addr)
        s = c.stats
        assert s.accesses == len(stream)
        assert s.hits + s.misses == s.accesses
        assert s.writebacks == writebacks
        assert s.writebacks <= s.misses

    @given(st.integers(2, 64))
    @settings(max_examples=20)
    def test_working_set_within_capacity_always_hits(self, n_lines):
        c = CacheArray(64 * 64, line_size=64, ways=64)  # fully associative
        addrs = [i * 64 for i in range(min(n_lines, 64))]
        for a in addrs:
            c.access(a)
        for a in addrs:
            hit, _ = c.access(a)
            assert hit


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy([
            LevelSpec("L1", 1024, ways=2, latency_ps=1000),
            LevelSpec("L2", 8192, ways=4, latency_ps=5000),
        ], memory_latency_ps=50_000)

    def test_miss_all_levels_latency(self):
        h = self._hierarchy()
        latency, level = h.access(0x10000)
        assert level == 2  # memory
        assert latency == 1000 + 5000 + 50_000
        assert h.memory_accesses == 1

    def test_l1_hit_latency(self):
        h = self._hierarchy()
        h.access(0x100)
        latency, level = h.access(0x100)
        assert level == 0
        assert latency == 1000

    def test_l2_hit_after_l1_eviction(self):
        h = self._hierarchy()
        h.access(0x000)
        # Evict 0x000 from tiny L1 by touching conflicting lines.
        for i in range(1, 20):
            h.access(i * 1024)
        latency, level = h.access(0x000)
        assert level in (1, 2)

    def test_hit_rates_reported(self):
        h = self._hierarchy()
        h.access(0)
        h.access(0)
        rates = h.hit_rates()
        assert rates["L1"] == 0.5

    def test_level_lookup(self):
        h = self._hierarchy()
        assert h.level("L2").name == "L2"
        with pytest.raises(KeyError):
            h.level("L9")

    def test_reset_stats(self):
        h = self._hierarchy()
        h.access(0)
        h.reset_stats()
        assert h.levels[0].stats.accesses == 0
        assert h.memory_accesses == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestCacheComponent:
    def _machine(self, *, requests=50, pattern="stream", cache_size="4KB",
                 footprint="64KB"):
        sim = Simulation(seed=9)
        cpu = TrafficGenerator(sim, "cpu", Params({
            "requests": requests, "pattern": pattern, "footprint": footprint,
            "outstanding": 4, "stride": 64,
        }))
        cache = Cache(sim, "l1", Params({
            "size": cache_size, "ways": 2, "hit_latency": "2ns", "level": "L1",
        }))
        mem = SimpleMemory(sim, "mem", Params({"latency": "60ns"}))
        sim.connect(cpu, "mem", cache, "cpu", latency="1ns")
        sim.connect(cache, "mem", mem, "cpu", latency="2ns")
        return sim, cpu, cache, mem

    def test_all_requests_complete(self):
        sim, cpu, cache, mem = self._machine()
        result = sim.run()
        assert result.reason == "exit"
        assert cpu.s_completed.count == 50

    def test_stream_larger_than_cache_misses(self):
        sim, cpu, cache, mem = self._machine(requests=64, cache_size="1KB",
                                             footprint="64KB")
        sim.run()
        # One pass over 64 distinct lines with a 16-line cache: all miss.
        assert cache.s_misses.count == 64
        assert mem.s_requests.count >= 64

    def test_repeated_stream_hits_when_resident(self):
        # footprint 2KB < cache 4KB: second pass over the lines hits.
        sim, cpu, cache, mem = self._machine(requests=64, cache_size="4KB",
                                             footprint="2KB")
        sim.run()
        assert cache.s_hits.count == 32
        assert cache.s_misses.count == 32

    def test_hit_latency_shorter_than_miss(self):
        sim, cpu, cache, mem = self._machine(requests=64, cache_size="4KB",
                                             footprint="2KB")
        sim.run()
        latencies = cpu.s_latency
        # Mean latency must be far below the 60ns memory when half hit.
        assert latencies.minimum < 10_000
        assert latencies.maximum > 60_000

    def test_writeback_traffic_to_memory(self):
        sim = Simulation(seed=9)
        cpu = TrafficGenerator(sim, "cpu", Params({
            "requests": 64, "pattern": "stream", "footprint": "8KB",
            "outstanding": 1, "stride": 64, "write_fraction": 1.0,
        }))
        cache = Cache(sim, "l1", Params({"size": "1KB", "ways": 2}))
        mem = SimpleMemory(sim, "mem", Params({"latency": "60ns"}))
        sim.connect(cpu, "mem", cache, "cpu", latency="1ns")
        sim.connect(cache, "mem", mem, "cpu", latency="2ns")
        sim.run()
        assert cache.s_writebacks.count > 0
        # memory sees fetches + writebacks
        assert mem.s_requests.count > 64

    def test_mshr_limit_queues(self):
        sim = Simulation(seed=9)
        cpu = TrafficGenerator(sim, "cpu", Params({
            "requests": 32, "pattern": "stream", "footprint": "64KB",
            "outstanding": 16, "stride": 64,
        }))
        cache = Cache(sim, "l1", Params({"size": "1KB", "ways": 2, "mshrs": 2}))
        mem = SimpleMemory(sim, "mem", Params({"latency": "200ns"}))
        sim.connect(cpu, "mem", cache, "cpu", latency="1ns")
        sim.connect(cache, "mem", mem, "cpu", latency="2ns")
        result = sim.run()
        assert result.reason == "exit"
        assert cpu.s_completed.count == 32
        assert cache.s_queued.count > 0


class TestPrefetcher:
    def _machine(self, depth, pattern="stream", requests=256,
                 memory_latency="80ns"):
        from repro.config import ConfigGraph, build

        g = ConfigGraph("pf")
        g.component("cpu", "processor.TrafficGenerator",
                    {"requests": requests, "pattern": pattern, "stride": 64,
                     "footprint": "1MB", "outstanding": 1})
        g.component("l1", "memory.Cache", {"size": "16KB", "ways": 4,
                                           "prefetch": depth})
        g.component("mem", "memory.SimpleMemory",
                    {"latency": memory_latency})
        g.link("cpu", "mem", "l1", "cpu", latency="1ns")
        g.link("l1", "mem", "mem", "cpu", latency="2ns")
        sim = build(g, seed=1)
        result = sim.run()
        assert result.reason == "exit"
        return sim.stat_values()

    def test_disabled_by_default(self):
        values = self._machine(0)
        assert values["l1.prefetches"] == 0
        assert values["l1.prefetch_hits"] == 0

    def test_stream_prefetching_cuts_misses_and_runtime(self):
        base = self._machine(0)
        pf = self._machine(4)
        assert pf["l1.misses"] < base["l1.misses"] / 2
        assert pf["cpu.runtime_ps"] < base["cpu.runtime_ps"] / 2
        assert pf["l1.prefetch_hits"] > 100

    def test_deeper_prefetch_fewer_demand_misses(self):
        shallow = self._machine(2)
        deep = self._machine(8)
        assert deep["l1.misses"] < shallow["l1.misses"]

    def test_every_request_still_completes(self):
        values = self._machine(8)
        assert values["cpu.completed"] == 256

    def test_random_pattern_gains_little(self):
        """Stream prefetching helps random access far less than
        streaming (accuracy, not just coverage)."""
        def speedup(pattern):
            base = self._machine(0, pattern=pattern)
            pf = self._machine(4, pattern=pattern)
            return base["cpu.runtime_ps"] / pf["cpu.runtime_ps"]

        assert speedup("stream") > 1.5 * speedup("random")

    def test_prefetch_traffic_accounted(self):
        values = self._machine(4)
        assert values["l1.prefetches"] > 0
        # Memory saw demand misses + prefetches.
        assert values["mem.requests"] == pytest.approx(
            values["l1.misses"] + values["l1.prefetches"])
