"""Parametric conformance sweep over the whole component catalogue.

Every library component rides through :func:`repro.testing.run_conformance`
on a minimal graph that exercises it: build with event validation →
run → mid-run engine snapshot → restore → bit-identical statistics.
A component that regresses any auto-wired engine service (port
validation, checkpoint capture, reconstruct hooks, telemetry gauges)
fails here by name.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigGraph, build_crossbar
from repro.testing import run_conformance


def tg_simple_graph() -> ConfigGraph:
    g = ConfigGraph("conf-tg")
    g.component("cpu", "processor.TrafficGenerator",
                {"requests": 64, "pattern": "random", "footprint": "256KB",
                 "outstanding": 4})
    g.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
    g.link("cpu", "mem", "mem", "cpu", latency="1ns")
    return g


def cache_graph() -> ConfigGraph:
    g = ConfigGraph("conf-cache")
    g.component("cpu", "processor.TrafficGenerator",
                {"requests": 96, "pattern": "random", "footprint": "64KB"})
    g.component("l1", "memory.Cache",
                {"size": "8KB", "ways": 4, "hit_latency": "1ns",
                 "level": "L1"})
    g.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
    g.link("cpu", "mem", "l1", "cpu", latency="1ns")
    g.link("l1", "mem", "mem", "cpu", latency="2ns")
    return g


def main_memory_graph() -> ConfigGraph:
    g = ConfigGraph("conf-dram")
    g.component("cpu", "processor.TrafficGenerator",
                {"requests": 48, "pattern": "stream", "stride": 64})
    g.component("mem", "memory.MainMemory", {"technology": "DDR3-1333"})
    g.link("cpu", "mem", "mem", "cpu", latency="1ns")
    return g


def controller_graph() -> ConfigGraph:
    g = ConfigGraph("conf-ctrl")
    g.component("cpu", "processor.TrafficGenerator",
                {"requests": 48, "pattern": "random", "footprint": "1MB"})
    g.component("ctrl", "memory.MemController",
                {"technology": "DDR3-1333", "policy": "frfcfs"})
    g.link("cpu", "mem", "ctrl", "cpu", latency="1ns")
    return g


def shared_bus_graph() -> ConfigGraph:
    g = ConfigGraph("conf-bus")
    g.component("bus", "memory.SharedBus",
                {"n_ports": 2, "bandwidth": "10GB/s"})
    g.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
    g.link("bus", "mem", "mem", "cpu", latency="1ns")
    for i in range(2):
        g.component(f"cpu{i}", "processor.TrafficGenerator",
                    {"requests": 32, "pattern": "stream", "stride": 64,
                     "outstanding": 2})
        g.link(f"cpu{i}", "mem", "bus", f"cpu{i}", latency="1ns")
    return g


def coherence_graph() -> ConfigGraph:
    g = ConfigGraph("conf-coherence")
    g.component("bus", "memory.CoherentBus",
                {"n_caches": 2, "capacity_lines": 32})
    for i in range(2):
        g.component(f"cpu{i}", "processor.TrafficGenerator",
                    {"requests": 48, "pattern": "random",
                     "footprint": "16KB"})
        g.component(f"l1_{i}", "memory.CoherentCache", {"cache_id": i})
        g.link(f"cpu{i}", "mem", f"l1_{i}", "cpu", latency="1ns")
        g.link(f"l1_{i}", "bus", "bus", f"cache{i}", latency="1ns")
    return g


def mixcore_graph() -> ConfigGraph:
    g = ConfigGraph("conf-mixcore")
    g.component("core", "processor.MixCore",
                {"workload": "hpccg", "instructions": 300_000,
                 "issue_width": 2, "clock": "2GHz"})
    g.component("mem", "memory.NodeMemory",
                {"technology": "DDR3-1333", "n_ports": 1})
    g.link("core", "mem", "mem", "core0", latency="1ns")
    return g


def network_graph() -> ConfigGraph:
    g = ConfigGraph("conf-net")
    topo = build_crossbar(g, 2)
    for i in range(2):
        g.component(f"nic{i}", "network.Nic",
                    {"injection_bandwidth": "3.2GB/s"})
        g.component(f"ep{i}", "network.PatternEndpoint",
                    {"endpoint_id": i, "n_endpoints": 2,
                     "pattern": "neighbor", "count": 6, "size": "4KB",
                     "gap": "3us"})
        g.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
        topo.attach(g, i, f"nic{i}", "net", latency="10ns")
    return g


def miniapp_graph() -> ConfigGraph:
    g = ConfigGraph("conf-miniapp")
    topo = build_crossbar(g, 2)
    for i in range(2):
        g.component(f"rank{i}", "miniapps.HPCCG",
                    {"rank": i, "n_ranks": 2, "iterations": 2,
                     "noise_frequency": 100.0, "noise_duration": "1us"})
        g.component(f"nic{i}", "network.Nic",
                    {"injection_bandwidth": "3.2GB/s"})
        g.link(f"rank{i}", "nic", f"nic{i}", "cpu", latency="1ns")
        topo.attach(g, i, f"nic{i}", "net", latency="10ns")
    return g


def sampler_graph() -> ConfigGraph:
    g = tg_simple_graph()
    g.component("sampler", "analysis.StatSampler",
                {"period": "100ns", "patterns": "cpu.*"})
    return g


def job_graph() -> ConfigGraph:
    g = ConfigGraph("conf-job")
    g.component("job", "resilience.CheckpointedJob",
                {"work": "2s", "interval": "200ms",
                 "checkpoint_time": "10ms", "restart_time": "30ms",
                 "mtbf": "5s"})
    return g


def _cluster_graph(policy: str):
    def make() -> ConfigGraph:
        g = ConfigGraph(f"conf-cluster-{policy.split('.')[-1].lower()}")
        g.component("src", "cluster.JobSource",
                    {"jobs": 120, "mode": "burst", "burst_size": 16,
                     "burst_gap": "50ms", "mean_runtime": "30ms",
                     "max_nodes": 8, "window": 8})
        g.component("sched", "cluster.Scheduler",
                    {"nodes": 16, "policy": policy})
        g.component("pool", "cluster.NodePool", {"nodes": 16})
        g.component("slo", "cluster.SLOStats", {"capacity": 16})
        g.link("src", "out", "sched", "submit", latency="10ns")
        g.link("sched", "pool", "pool", "sched", latency="10ns")
        g.link("sched", "report", "slo", "report", latency="10ns")
        return g

    return make


def trace_graph_factory(tmp_path):
    from repro.processor import TraceSpec
    from repro.processor.tracefile import record_trace

    trace = tmp_path / "conf.trace"
    spec = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.8,
                              stream_probability=0.1, seed=5)
    record_trace(spec, 80, trace)

    def make() -> ConfigGraph:
        g = ConfigGraph("conf-trace")
        g.component("cpu", "processor.TraceReplayCore",
                    {"trace": str(trace), "outstanding": 4})
        g.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
        g.link("cpu", "mem", "mem", "cpu", latency="1ns")
        return g

    return make


GRAPHS = {
    "traffic-gen+simple-memory": tg_simple_graph,
    "cache": cache_graph,
    "main-memory": main_memory_graph,
    "mem-controller": controller_graph,
    "shared-bus": shared_bus_graph,
    "coherent-cache+bus": coherence_graph,
    "mixcore+node-memory": mixcore_graph,
    "nic+endpoint+router": network_graph,
    "miniapp-ranks": miniapp_graph,
    "stat-sampler": sampler_graph,
    "checkpointed-job": job_graph,
    # The three cluster graphs cover every registered policy
    # subcomponent through the Scheduler's slot (snapshot/restore lands
    # mid-backfill by construction: bursts keep the queue non-empty).
    "cluster-fcfs": _cluster_graph("cluster.FCFS"),
    "cluster-backfill": _cluster_graph("cluster.EASYBackfill"),
    "cluster-priority": _cluster_graph("cluster.Priority"),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_component_conformance(name, tmp_path):
    run_conformance(GRAPHS[name], tmp_path)


def test_trace_replay_conformance(tmp_path):
    run_conformance(trace_graph_factory(tmp_path), tmp_path)


def test_conformance_covers_every_registered_component():
    """The sweep above must name every library component at least once."""
    from repro.core.registry import load_all_libraries, registered_types

    from repro.core.registry import resolve

    load_all_libraries()
    covered = set()
    for make in list(GRAPHS.values()):
        for conf in make().components():
            covered.add(conf.type_name)
            # Subcomponents never appear as graph nodes: count the
            # types each declared slot resolves for this config.
            cls = resolve(conf.type_name)
            for spec in getattr(cls, "_slot_specs", {}).values():
                slot_type = spec.configured_type(conf.params)
                if slot_type is not None:
                    covered.add(slot_type)
    covered.add("processor.TraceReplayCore")
    missing = set()
    for type_name in registered_types():
        library = type_name.split(".", 1)[0]
        if library == "miniapps":
            # One AppRank subclass exercises the shared base; the
            # apps differ only in declarative phase programs.
            continue
        if library == "testlib":
            continue  # the suite's own fixtures, not library components
        if type_name not in covered:
            missing.add(type_name)
    assert not missing, f"components without conformance coverage: {missing}"
