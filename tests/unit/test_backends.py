"""Tests for the engine's layered execution stack.

Covers the three execution backends (serial / threads / processes) and
the coarse-grained job pools: stat equivalence on the same partitioned
graph, worker error propagation, resource cleanup on failure, and the
per-rank engine RNG streams.
"""

import pytest

from repro.config import ConfigGraph, build, build_parallel
from repro.core import (Component, Event, Params, ParallelSimulation,
                        Simulation, SimulationError)
from repro.core.backends import (BACKENDS, JobPool, default_jobs,
                                 make_backend, make_job_pool)
from tests.conftest import PingPong, Sink, Source

ALL_BACKENDS = sorted(BACKENDS)


class UnpicklableEvent(Event):
    """Carries a live callable — cannot cross a process boundary."""

    __slots__ = ("fn",)

    def __init__(self):
        self.fn = lambda: None


class Relay(Component):
    """Sends one unpicklable event on its out port at t=1ns."""

    def setup(self):
        self.schedule(1000, self._fire)

    def _fire(self, _):
        self.send("out", UnpicklableEvent())


def paper_style_graph():
    """A partitionable config graph: two source->sink flows."""
    graph = ConfigGraph("backend-equivalence")
    for i in range(2):
        graph.component(f"src{i}", "testlib.Source",
                        {"count": 20, "period": "2ns"})
        graph.component(f"sink{i}", "testlib.Sink", {})
        graph.link(f"src{i}", "out", f"sink{i}", "in", latency="5ns")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": 30})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="7ns")
    return graph


class TestBackendEquivalence:
    def test_stat_values_identical_across_backends(self):
        """The load-bearing property of the backend layer: the same
        partitioned graph yields bit-identical statistics on every
        execution substrate."""
        graph = paper_style_graph()
        seq = build(graph, seed=9)
        seq.run()
        reference = seq.stat_values()

        for backend in ALL_BACKENDS:
            psim = build_parallel(graph, 3, strategy="round_robin",
                                  seed=9, backend=backend)
            psim.run()
            assert psim.stat_values() == reference, backend

    def test_run_results_identical_across_backends(self):
        results = {}
        for backend in ALL_BACKENDS:
            psim = build_parallel(paper_style_graph(), 2, seed=9,
                                  backend=backend)
            res = psim.run()
            results[backend] = (res.reason, res.end_time,
                                res.events_executed, res.epochs,
                                res.remote_events)
        assert len(set(results.values())) == 1, results

    def test_make_backend_unknown_raises(self):
        psim = ParallelSimulation(2)
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", psim)


class TestProcessesBackend:
    def test_exception_propagates(self):
        class Exploder(Component):
            def setup(self):
                self.schedule(1000, self._boom)

            def _boom(self, _):
                raise RuntimeError("model bug")

        psim = ParallelSimulation(2, seed=1, backend="processes")
        Exploder(psim.rank_sim(0), "x")
        Sink(psim.rank_sim(1), "s")
        with pytest.raises(RuntimeError, match="model bug"):
            psim.run()
        assert psim._backend is None  # workers reaped despite the failure

    def test_unpicklable_cross_rank_event_raises(self):
        psim = ParallelSimulation(2, seed=1, backend="processes")
        relay = Relay(psim.rank_sim(0), "relay")
        sink = Sink(psim.rank_sim(1), "sink")
        psim.connect(relay, "out", sink, "in", latency="3ns")
        with pytest.raises(SimulationError, match="not serializable"):
            psim.run()

    def test_resume_after_limit_raises(self):
        psim = ParallelSimulation(2, seed=1, backend="processes")
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 10**6}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        result = psim.run(max_epochs=3)
        assert result.reason == "max_epochs"
        with pytest.raises(SimulationError, match="cannot resume"):
            psim.run()

    def test_threads_backend_resumes_after_limit(self):
        psim = ParallelSimulation(2, seed=1, backend="threads")
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 12}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        first = psim.run(max_epochs=3)
        assert first.reason == "max_epochs"
        second = psim.run()
        assert second.reason == "exit"
        assert a.received.count == 12


class TestCleanupOnFailure:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_failed_run_releases_backend(self, backend):
        """Satellite fix: run() must close its execution substrate even
        when a model exception unwinds the epoch loop."""

        class Exploder(Component):
            def setup(self):
                self.schedule(1000, self._boom)

            def _boom(self, _):
                raise RuntimeError("model bug")

        psim = ParallelSimulation(2, seed=1, backend=backend)
        Exploder(psim.rank_sim(0), "x")
        Sink(psim.rank_sim(1), "s")
        with pytest.raises(RuntimeError, match="model bug"):
            psim.run()
        assert psim._backend is None
        assert psim._pool is None


class TestRankSeeds:
    def test_engine_rng_streams_distinct_per_rank(self):
        psim = ParallelSimulation(4, seed=11)
        seeds = [psim.rank_sim(r).rank_seed for r in range(4)]
        assert len(set(seeds)) == 4
        draws = [psim.rank_sim(r).engine_rng.random() for r in range(4)]
        assert len(set(draws)) == 4

    def test_rank_seeds_deterministic(self):
        a = ParallelSimulation(3, seed=11)
        b = ParallelSimulation(3, seed=11)
        assert ([a.rank_sim(r).rank_seed for r in range(3)]
                == [b.rank_sim(r).rank_seed for r in range(3)])
        c = ParallelSimulation(3, seed=12)
        assert ([a.rank_sim(r).rank_seed for r in range(3)]
                != [c.rank_sim(r).rank_seed for r in range(3)])

    def test_base_seed_shared_for_component_streams(self):
        """Component RNG streams key off the *base* seed, which is what
        keeps sequential and parallel statistics identical."""
        psim = ParallelSimulation(2, seed=5)
        assert psim.rank_sim(0).seed == 5
        assert psim.rank_sim(1).seed == 5
        assert psim.rank_sim(0).rank_seed != psim.rank_sim(1).rank_seed


def _square(x):
    return x * x


class TestJobPools:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_map_preserves_order(self, backend):
        with make_job_pool(backend, jobs=2) as pool:
            assert pool.map(_square, range(8)) == [x * x for x in range(8)]

    def test_serial_fallback_for_single_job(self):
        pool = make_job_pool("threads", jobs=1)
        assert pool.name == "serial"

    def test_unknown_pool_backend_raises(self):
        with pytest.raises(ValueError, match="unknown job-pool backend"):
            make_job_pool("gpu", jobs=2)

    def test_invalid_jobs_raises(self):
        with pytest.raises(ValueError, match="jobs must be"):
            make_job_pool("serial", jobs=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
