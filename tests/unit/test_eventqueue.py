"""Unit + property tests for the pending-event set implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event import EventRecord
from repro.core.eventqueue import (BinnedEventQueue, HeapEventQueue,
                                   make_queue)

QUEUES = [HeapEventQueue, lambda: BinnedEventQueue(bin_width=100, n_bins=8)]
QUEUE_IDS = ["heap", "binned"]


@pytest.fixture(params=QUEUES, ids=QUEUE_IDS)
def queue(request):
    return request.param()


class TestBasics:
    def test_empty(self, queue):
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None

    def test_push_pop_single(self, queue):
        queue.push(100, 50, None, None)
        assert len(queue) == 1
        record = queue.pop()
        assert record.time == 100
        assert len(queue) == 0

    def test_pop_empty_raises(self, queue):
        with pytest.raises(IndexError):
            queue.pop()

    def test_time_ordering(self, queue):
        for t in (500, 100, 300, 200, 400):
            queue.push(t, 50, None, None)
        times = [queue.pop().time for _ in range(5)]
        assert times == [100, 200, 300, 400, 500]

    def test_priority_breaks_time_ties(self, queue):
        queue.push(100, 50, None, None)
        queue.push(100, 25, None, None)
        queue.push(100, 90, None, None)
        priorities = [queue.pop().priority for _ in range(3)]
        assert priorities == [25, 50, 90]

    def test_insertion_order_breaks_full_ties(self, queue):
        records = [queue.push(100, 50, None, None) for _ in range(10)]
        popped = [queue.pop() for _ in range(10)]
        assert [r.seq for r in popped] == [r.seq for r in records]

    def test_peek_matches_pop(self, queue):
        for t in (300, 100, 200):
            queue.push(t, 50, None, None)
        assert queue.peek_time() == 100
        assert queue.pop().time == 100
        assert queue.peek_time() == 200

    def test_interleaved_push_pop(self, queue):
        queue.push(100, 50, None, None)
        queue.push(50, 50, None, None)
        assert queue.pop().time == 50
        queue.push(75, 50, None, None)
        assert queue.pop().time == 75
        assert queue.pop().time == 100

    def test_push_record_preserves_foreign_seq(self, queue):
        rec = EventRecord(10, 50, 999, None, None)
        queue.push_record(rec)
        later = queue.push(10, 50, None, None)
        assert later.seq > 999
        assert queue.pop().seq == 999


class TestPushRecord:
    """Records arriving from another rank carry foreign sequence numbers;
    the local counter must stay ahead so later local pushes sort after
    them (the cross-rank delivery path of the parallel engine)."""

    def test_counter_advances_past_foreign_seq(self, queue):
        queue.push_record(EventRecord(100, 50, 7, None, None))
        local = queue.push(100, 50, None, None)
        assert local.seq == 8
        popped = [queue.pop().seq for _ in range(2)]
        assert popped == [7, 8]

    def test_lower_foreign_seq_keeps_counter(self, queue):
        first = queue.push(100, 50, None, None)
        assert first.seq == 0
        queue.push_record(EventRecord(100, 50, 0, None, None))
        nxt = queue.push(100, 50, None, None)
        assert nxt.seq == 1  # foreign seq 0 did not rewind the counter

    def test_interleaved_foreign_batches_stay_ordered(self, queue):
        # Two foreign batches around a local push, all at one timestamp:
        # pops must follow seq order regardless of arrival order.
        queue.push_record(EventRecord(200, 50, 3, None, None))
        queue.push_record(EventRecord(200, 50, 4, None, None))
        local = queue.push(200, 50, None, None)
        assert local.seq == 5
        queue.push_record(EventRecord(200, 50, 10, None, None))
        assert [queue.pop().seq for _ in range(4)] == [3, 4, 5, 10]
        later = queue.push(200, 50, None, None)
        assert later.seq == 11


class TestBinnedSpecifics:
    def test_overflow_beyond_horizon(self):
        q = BinnedEventQueue(bin_width=10, n_bins=4)  # horizon = 40ps
        q.push(5, 50, None, None)
        q.push(1000, 50, None, None)  # far future -> overflow heap
        q.push(15, 50, None, None)
        assert [q.pop().time for _ in range(3)] == [5, 15, 1000]

    def test_all_in_overflow(self):
        q = BinnedEventQueue(bin_width=1, n_bins=1)
        for t in (30, 10, 20):
            q.push(t, 50, None, None)
        assert [q.pop().time for _ in range(3)] == [10, 20, 30]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinnedEventQueue(bin_width=0)
        with pytest.raises(ValueError):
            BinnedEventQueue(n_bins=0)


class TestMakeQueue:
    def test_known_kinds(self):
        assert isinstance(make_queue("heap"), HeapEventQueue)
        assert isinstance(make_queue("binned"), BinnedEventQueue)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_queue("quantum")


@st.composite
def _event_batches(draw):
    return draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5000),  # time
                st.sampled_from([25, 40, 50, 90]),  # priority
            ),
            min_size=0,
            max_size=200,
        )
    )


class TestProperties:
    @given(_event_batches())
    @settings(max_examples=100)
    def test_heap_pops_fully_sorted(self, batch):
        self._check_sorted(HeapEventQueue(), batch)

    @given(_event_batches())
    @settings(max_examples=100)
    def test_binned_pops_fully_sorted(self, batch):
        self._check_sorted(BinnedEventQueue(bin_width=64, n_bins=16), batch)

    @staticmethod
    def _check_sorted(queue, batch):
        for time, priority in batch:
            queue.push(time, priority, None, None)
        popped = [queue.pop() for _ in range(len(batch))]
        keys = [(r.time, r.priority, r.seq) for r in popped]
        assert keys == sorted(keys)
        assert len(queue) == 0

    @given(_event_batches(), _event_batches())
    @settings(max_examples=50)
    def test_heap_and_binned_agree(self, batch_a, batch_b):
        """Both queue types yield the identical pop sequence, including a
        drain-refill cycle in the middle."""
        heap, binned = HeapEventQueue(), BinnedEventQueue(bin_width=32, n_bins=8)
        out_heap, out_binned = [], []
        for q, out in ((heap, out_heap), (binned, out_binned)):
            for t, p in batch_a:
                q.push(t, p, None, None)
            for _ in range(len(batch_a) // 2):
                out.append(q.pop().key())
            base = max((t for t, _ in batch_a), default=0)
            for t, p in batch_b:
                q.push(base + t, p, None, None)
            while q:
                out.append(q.pop().key())
        assert out_heap == out_binned
