"""PR 9 unit coverage: the shm exchange transport and its feedback loop.

* :class:`repro.core.shm.RingBuffer` — SPSC byte ring: wrap-around,
  full-ring backpressure, frames larger than the whole ring;
* the flat event codec (:mod:`repro.core.event`) — flat fast path,
  whole-event pickle fallback, outbox-entry framing;
* :func:`encode_step` / :func:`decode_step` — the up-ring step frame;
* engine snapshots taken *under* ``transport="shm"`` resume exactly
  (the control plane stays on the pipes — satellite regression);
* ``restore(assignment=...)`` — the pinned repartition restore the
  ``obs partition-advise`` flow feeds;
* :class:`PartitionProfile` / :func:`build_profile` / :func:`advise` —
  feedback-driven repartitioning from recorded telemetry.
"""

from __future__ import annotations

import threading
import time as _wall_time

import pytest

from repro.config import ConfigGraph, build_parallel
from repro.core import event as event_mod
from repro.core.backends import RankStep
from repro.core.event import (Event, decode_entries, decode_event,
                              encode_entries, encode_event)
from repro.core.partition import (PartitionEdge, PartitionProfile,
                                  partition)
from repro.core.shm import (_RING_HEADER, RingBuffer, ShmExchange,
                            decode_step, encode_step)
from repro.memory.events import MemRequest
from repro.obs import build_profile


def _fail_wait():
    raise AssertionError("ring unexpectedly blocked")


class _WouldBlock(Exception):
    pass


def _raise_wait():
    raise _WouldBlock


def _sleep_wait():
    _wall_time.sleep(0.0001)


# ----------------------------------------------------------------------
# RingBuffer
# ----------------------------------------------------------------------

class TestRingBuffer:
    def _ring(self, capacity):
        buf = bytearray(_RING_HEADER + capacity)
        return RingBuffer(buf, 0, capacity)

    def test_frames_wrap_across_the_boundary(self):
        """11-byte frames through a 16-byte ring: head/tail wrap inside
        both the length prefix and the payload within a few frames."""
        ring = self._ring(16)
        for i in range(10):
            payload = bytes([i]) * 7
            ring.write_frame(payload, _fail_wait)
            assert ring.read_frame(_fail_wait) == payload
        assert ring.head == ring.tail == 10 * 11
        assert ring.head > ring.capacity  # it really wrapped

    def test_full_ring_backpressures_writer(self):
        ring = self._ring(8)
        ring.write(b"x" * 8, _fail_wait)
        with pytest.raises(_WouldBlock):
            ring.write(b"y", _raise_wait)
        assert ring.read(8, _fail_wait) == b"x" * 8
        ring.write(b"y", _fail_wait)  # drained: space again
        assert ring.read(1, _fail_wait) == b"y"

    def test_empty_ring_backpressures_reader(self):
        ring = self._ring(8)
        with pytest.raises(_WouldBlock):
            ring.read(1, _raise_wait)

    def test_transient_zero_head_read_does_not_desync_reader(self):
        """Some kernels let a freshly-forked worker's first faults into
        the shared mapping observe a zero page where the producer long
        since wrote a nonzero head.  The reader must treat the
        impossible value as "no news" and retry — trusting it would
        compute a negative occupancy and walk the tail backwards."""
        ring = self._ring(64)
        ring.write_frame(b"first", _fail_wait)
        assert ring.read_frame(_fail_wait) == b"first"
        ring.write_frame(b"second", _fail_wait)
        real_head = bytes(ring._buf[0:8])
        ring._buf[0:8] = b"\0" * 8  # the transient zero page
        waits = []

        def restore_wait():
            waits.append(1)
            ring._buf[0:8] = real_head

        assert ring.read_frame(restore_wait) == b"second"
        assert waits  # the zero read was rejected, not trusted

    def test_transient_zero_tail_read_does_not_overrun_writer(self):
        """Mirror hazard on the producer: a zero tail read would
        overstate the free space and let the writer clobber unread
        bytes on a nearly-full ring."""
        ring = self._ring(8)
        ring.write(b"abcd", _fail_wait)
        assert ring.read(4, _fail_wait) == b"abcd"
        ring.write(b"efgh", _fail_wait)  # head=8, tail=4: 4 bytes free
        real_tail = bytes(ring._buf[8:16])
        ring._buf[8:16] = b"\0" * 8
        waits = []

        def restore_wait():
            waits.append(1)
            ring._buf[8:16] = real_tail

        ring.write(b"ijkl", restore_wait)
        assert waits
        assert ring.read(8, _fail_wait) == b"efghijkl"

    def test_frame_larger_than_ring_streams_through(self):
        """A frame 32x the ring capacity completes as long as both
        sides run concurrently — the no-deadlock property post() and
        complete() rely on when an epoch's batch outgrows the ring."""
        ring = self._ring(32)
        payload = bytes(range(256)) * 4  # 1 KiB through a 32-byte ring
        writer_waits = []

        def _writer():
            ring.write_frame(payload,
                             lambda: (writer_waits.append(1),
                                      _wall_time.sleep(0.0001)))

        thread = threading.Thread(target=_writer)
        thread.start()
        out = ring.read_frame(_sleep_wait)
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert out == payload
        assert writer_waits  # the writer really was backpressured


# ----------------------------------------------------------------------
# flat event codec
# ----------------------------------------------------------------------

class PickledPayload(Event):
    """A slot value no flat tag covers (dict) forces the pickle path."""

    __slots__ = ("table",)

    def __init__(self, table=None):
        self.table = table if table is not None else {}


class TestEventCodec:
    def test_flat_roundtrip_covers_all_tags(self):
        req = MemRequest(addr=0xDEAD_BEEF, size=64, is_write=True,
                         req_id=1234, src_port=None, phase="probe")
        blob = encode_event(req)
        assert blob[0] == event_mod._EVK_FLAT
        out, offset = decode_event(blob)
        assert offset == len(blob)
        assert type(out) is MemRequest
        assert (out.addr, out.size, out.is_write, out.req_id,
                out.src_port, out.phase) == (req.addr, req.size,
                                             req.is_write, req.req_id,
                                             None, "probe")

    def test_nonflat_slot_value_falls_back_to_pickle(self):
        ev = PickledPayload({"a": [1, 2], "b": {"nested": True}})
        blob = encode_event(ev)
        assert blob[0] == event_mod._EVK_PICKLE
        out, offset = decode_event(blob)
        assert offset == len(blob)
        assert out.table == ev.table

    def test_huge_int_falls_back_to_pickle(self):
        req = MemRequest(addr=1 << 80)  # beyond the i64 flat tag
        blob = encode_event(req)
        assert blob[0] == event_mod._EVK_PICKLE
        out, _ = decode_event(blob)
        assert out.addr == 1 << 80

    def test_entries_roundtrip_mixed_kinds(self):
        entries = [
            (1000, 50, 3, 1, 7, MemRequest(addr=64, req_id=1)),
            (1000, 50, 3, 0, 8, PickledPayload({"k": "v"})),
            (2500, 40, 9, 1, 9, MemRequest(addr=128, req_id=2,
                                           phase="x" * 300)),
        ]
        blob = encode_entries(entries)
        out, offset = decode_entries(blob)
        assert offset == len(blob)
        assert [e[:5] for e in out] == [e[:5] for e in entries]
        assert out[0][5].addr == 64
        assert out[1][5].table == {"k": "v"}
        assert out[2][5].phase == "x" * 300

    def test_empty_entries(self):
        blob = encode_entries([])
        assert decode_entries(blob) == ([], len(blob))


class TestStepFrame:
    def test_roundtrip_with_outbox_and_obs(self):
        outbox = [[], [(10, 50, 1, 1, 0, MemRequest(addr=8, req_id=3))],
                  [(10, 50, 2, 2, 1, PickledPayload({"z": 1}))]]
        step = RankStep(wall_seconds=0.25, events=42, outbox=outbox,
                        next_time=999, primaries_pending=1,
                        last_event_time=998, now=1000,
                        obs_records=[{"kind": "sample", "events": 42}])
        out = decode_step(encode_step(step), num_ranks=3)
        assert (out.wall_seconds, out.events, out.next_time,
                out.primaries_pending, out.last_event_time, out.now) == \
            (0.25, 42, 999, 1, 998, 1000)
        assert [len(b) for b in out.outbox] == [0, 1, 1]
        assert out.outbox[1][0][:5] == (10, 50, 1, 1, 0)
        assert out.outbox[2][0][5].table == {"z": 1}
        assert out.obs_records == [{"kind": "sample", "events": 42}]

    def test_roundtrip_drained_rank(self):
        step = RankStep(wall_seconds=0.0, events=0, outbox=[],
                        next_time=None, primaries_pending=0,
                        last_event_time=-1, now=500)
        out = decode_step(encode_step(step), num_ranks=2)
        assert out.next_time is None
        assert out.outbox == []
        assert out.obs_records is None


# ----------------------------------------------------------------------
# ShmExchange (single-process: parent and "worker" share the mapping)
# ----------------------------------------------------------------------

class TestShmExchange:
    def test_epoch_handshake_and_byte_accounting(self):
        exchange = ShmExchange(2, ring_capacity=4096)
        try:
            exchange.post(0, 5000, b"deliveries-for-rank0")
            assert exchange.cmd_seq(0) == 1
            assert exchange.epoch_end(0) == 5000
            assert exchange.read_deliveries(0) == b"deliveries-for-rank0"
            exchange.complete(0, b"step-result")
            assert exchange.collect(0) == b"step-result"
            assert exchange.bytes_posted == len(b"deliveries-for-rank0") + 4
            assert exchange.bytes_collected == len(b"step-result") + 4
        finally:
            exchange.close(unlink=True)

    def test_fail_flag_skips_result_frame(self):
        exchange = ShmExchange(1, ring_capacity=1024)
        try:
            exchange.post(0, 100, b"")
            exchange.read_deliveries(0)
            exchange.fail(0)
            assert exchange.collect(0) is None
            assert exchange.err_flag(0) == 0  # collect cleared it
        finally:
            exchange.close(unlink=True)


# ----------------------------------------------------------------------
# snapshots under transport="shm" (the control plane stays on pipes)
# ----------------------------------------------------------------------

def _ckpt_graph() -> ConfigGraph:
    graph = ConfigGraph("shm-ckpt")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": 30})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="3ns")
    graph.component("src", "testlib.Source", {"count": 20, "period": "2ns"})
    graph.component("sink", "testlib.Sink", {})
    graph.link("src", "out", "sink", "in", latency="4ns")
    return graph


def _run_shm(graph, **run_kwargs):
    psim = build_parallel(graph, 2, strategy="round_robin", seed=7,
                          backend="processes", transport="shm",
                          sync="adaptive")
    result = psim.run(**run_kwargs)
    stats = psim.stat_values()
    return psim, result, stats


class TestSnapshotUnderShm:
    def test_midrun_snapshot_resumes_exactly(self, tmp_path):
        from repro.ckpt import restore

        ref, ref_result, ref_stats = _run_shm(_ckpt_graph())
        ref.close()
        assert ref_result.reason == "exit"

        psim, _, _ = _run_shm(_ckpt_graph(),
                              checkpoint_every=ref_result.end_time // 3,
                              checkpoint_dir=str(tmp_path))
        assert psim.checkpoints_written, "no snapshot landed mid-run"
        mid = psim.checkpoints_written[0]
        psim.close()

        resumed = restore(mid, transport="shm", sync="adaptive")
        result = resumed.run()
        stats = resumed.stat_values()
        resumed.close()
        assert result.reason == ref_result.reason
        assert result.end_time == ref_result.end_time
        assert stats == ref_stats


class TestAssignmentRestore:
    def test_restore_with_pinned_assignment(self, tmp_path):
        """An explicit component->rank map forces the repartition path
        and lands every component on its advised rank, with the final
        statistics unchanged."""
        from repro.ckpt import restore

        ref = build_parallel(_ckpt_graph(), 2, strategy="round_robin",
                             seed=7)
        ref_result = ref.run()
        ref_stats = ref.stat_values()

        psim = build_parallel(_ckpt_graph(), 2, strategy="round_robin",
                              seed=7)
        psim.run(checkpoint_every=ref_result.end_time // 3,
                 checkpoint_dir=str(tmp_path))
        mid = psim.checkpoints_written[0]
        psim.close()

        assignment = {"ping": 0, "pong": 0, "src": 1, "sink": 1}
        resumed = restore(mid, assignment=assignment)
        placed = {name: rank for rank in range(resumed.num_ranks)
                  for name in resumed.rank_sim(rank).components}
        assert placed == assignment
        result = resumed.run()
        stats = resumed.stat_values()
        resumed.close()
        assert result.reason == "exit"
        assert stats == ref_stats

    def test_restore_rejects_unknown_component(self, tmp_path):
        from repro.ckpt import CheckpointError, restore

        psim = build_parallel(_ckpt_graph(), 2, strategy="round_robin",
                              seed=7)
        psim.run(checkpoint_every="40ns", checkpoint_dir=str(tmp_path))
        mid = psim.checkpoints_written[0]
        psim.close()
        with pytest.raises(CheckpointError):
            restore(mid, assignment={"nonexistent": 0})


# ----------------------------------------------------------------------
# PartitionProfile / build_profile / advise
# ----------------------------------------------------------------------

class TestPartitionProfile:
    def test_scaled_node_weights(self):
        profile = PartitionProfile(node_multipliers={"a": 2.5})
        scaled = profile.scaled_node_weights({"a": 2.0, "b": 3.0})
        assert scaled == {"a": 5.0, "b": 3.0}

    def test_weighted_edges_add_traffic(self):
        profile = PartitionProfile(
            edge_traffic={frozenset(("a", "b")): 9.0})
        edges = [PartitionEdge("a", "b", weight=1.0, latency=10),
                 PartitionEdge("b", "c", weight=2.0, latency=20)]
        out = profile.weighted_edges(edges)
        assert out[0].weight == 10.0 and out[0].latency == 10
        assert out[1].weight == 2.0

    def test_partition_accepts_profile(self):
        nodes = ["a", "b", "c", "d"]
        edges = [PartitionEdge("a", "b"), PartitionEdge("b", "c"),
                 PartitionEdge("c", "d")]
        heavy = PartitionProfile(node_multipliers={"a": 50.0})
        result = partition(nodes, edges, 2, strategy="kl",
                           weights={n: 1.0 for n in nodes}, profile=heavy)
        # 'a' carries ~50/53 of the observed work: a balance-aware
        # strategy must leave it alone on its rank.
        rank_a = result.assignment["a"]
        assert [result.assignment[n] for n in "bcd"].count(rank_a) == 0


class TestAdvise:
    NAMES = {"src0", "sink0", "src1", "sink1"}

    def _graph(self) -> ConfigGraph:
        graph = ConfigGraph("advise-unit")
        for i in range(2):
            graph.component(f"src{i}", "testlib.Source",
                            {"count": 10, "period": "2ns"})
            graph.component(f"sink{i}", "testlib.Sink", {})
            graph.link(f"src{i}", "out", f"sink{i}", "in", latency="5ns")
        return graph

    def test_build_profile_from_busy_and_cut_edges(self):
        graph = self._graph()
        nodes, edges, weights = graph.partition_inputs()
        baseline = partition(nodes, edges, 2, strategy="round_robin",
                             weights=weights)
        cut = [{"name": "src0.out--sink0.in", "crossings": 12},
               {"name": "not-a-link", "crossings": 99}]
        profile = build_profile(graph, baseline, [3.0, 1.0], cut)
        # rank 0 ran 1.5x the mean, rank 1 0.5x: every component
        # inherits its rank's ratio.
        for node, rank in baseline.assignment.items():
            expected = 1.5 if rank == 0 else 0.5
            assert profile.node_multipliers[node] == pytest.approx(expected)
        assert profile.edge_traffic == {frozenset(("src0", "sink0")): 12.0}

    def test_advise_from_recorded_metrics(self, tmp_path):
        from repro.obs import TelemetryRecorder, advise

        graph = self._graph()
        metrics = tmp_path / "m.jsonl"
        psim = build_parallel(graph, 2, strategy="round_robin", seed=3)
        recorder = TelemetryRecorder(metrics).attach(psim)
        result = psim.run()
        recorder.finalize(result, graph=graph)
        psim.close()

        advice = advise(metrics, graph, num_ranks=2,
                        original_strategy="round_robin", strategy="kl")
        assert advice.num_ranks == 2
        assert set(advice.advised.assignment) == self.NAMES
        assert set(advice.advised.assignment.values()) <= {0, 1}
        doc = advice.as_dict()
        assert doc["version"] == 1
        assert set(doc["assignment"]) == self.NAMES
        assert doc["moved"] == advice.moved
        assert advice.report().strip()

    def test_advise_requires_parallel_metrics(self, tmp_path):
        from repro.obs import AdviseError, advise

        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"kind": "run_start", "mode": "sequential"}\n')
        with pytest.raises(AdviseError):
            advise(empty, self._graph(), num_ranks=2,
                   original_strategy="round_robin")
