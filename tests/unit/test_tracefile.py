"""Tests for trace file I/O and the trace-replay core."""

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigGraph, build
from repro.core import Params, Simulation
from repro.processor import (TraceFormatError, TraceReplayCore, TraceSpec,
                             read_trace, record_trace, write_trace)

records = st.lists(
    st.tuples(st.integers(0, 1 << 40), st.booleans(), st.integers(1, 4096)),
    min_size=0, max_size=200,
)


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace"
        data = [(0x1000, False, 64), (0x2000, True, 8)]
        assert write_trace(path, data) == 2
        assert list(read_trace(path)) == data

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        data = [(0xdeadbeef, True, 64)] * 50
        write_trace(path, data)
        # Actually gzip-compressed on disk.
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        assert list(read_trace(path)) == data

    @given(data=records)
    @settings(max_examples=40)
    def test_roundtrip_property(self, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("traces") / "p.trace"
        write_trace(path, data)
        assert list(read_trace(path)) == data

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 100 64\n")
        with pytest.raises(TraceFormatError, match="header"):
            list(read_trace(path))

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("#pysst-trace v1\nX 100 64\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))
        path.write_text("#pysst-trace v1\nR zz 64\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))
        path.write_text("#pysst-trace v1\nR 100 0\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("#pysst-trace v1\n\n# a comment\nR 40 64\n")
        assert list(read_trace(path)) == [(0x40, False, 64)]

    def test_invalid_write_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            write_trace(tmp_path / "x.trace", [(-1, False, 64)])

    def test_record_trace_from_spec(self, tmp_path):
        spec = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.9, seed=3)
        path = tmp_path / "synth.trace"
        assert record_trace(spec, 500, path) == 500
        loaded = list(read_trace(path))
        assert len(loaded) == 500
        # Deterministic: matches a fresh generation from the same spec.
        spec2 = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.9, seed=3)
        addrs, writes = spec2.generate(500)
        assert [r[0] for r in loaded] == [int(a) for a in addrs]


class TestTraceReplayCore:
    def _replay(self, tmp_path, data, **extra):
        path = tmp_path / "r.trace"
        write_trace(path, data)
        graph = ConfigGraph("replay")
        params = {"trace": str(path), "outstanding": 2}
        params.update(extra)
        graph.component("cpu", "processor.TraceReplayCore", params)
        graph.component("l1", "memory.Cache", {"size": "4KB", "ways": 2})
        graph.component("mem", "memory.SimpleMemory", {"latency": "50ns"})
        graph.link("cpu", "mem", "l1", "cpu", latency="1ns")
        graph.link("l1", "mem", "mem", "cpu", latency="1ns")
        sim = build(graph, seed=1)
        result = sim.run()
        return sim, result

    def test_replays_all_records(self, tmp_path):
        data = [(i * 64, i % 3 == 0, 64) for i in range(40)]
        sim, result = self._replay(tmp_path, data)
        assert result.reason == "exit"
        values = sim.stat_values()
        assert values["cpu.issued"] == 40
        assert values["cpu.completed"] == 40

    def test_cache_sees_trace_locality(self, tmp_path):
        # The same 8 lines looped 10 times: first pass misses, rest hit.
        data = [((i % 8) * 64, False, 64) for i in range(80)]
        sim, _ = self._replay(tmp_path, data)
        values = sim.stat_values()
        assert values["l1.misses"] == 8
        assert values["l1.hits"] == 72

    def test_max_records_limits(self, tmp_path):
        data = [(i * 64, False, 64) for i in range(40)]
        sim, result = self._replay(tmp_path, data, max_records=10)
        assert result.reason == "exit"
        assert sim.stat_values()["cpu.issued"] == 10

    def test_empty_trace_completes(self, tmp_path):
        sim, result = self._replay(tmp_path, [])
        # No events are ever scheduled, so the engine reports exhaustion
        # (the exit protocol is only evaluated between events).
        assert result.reason in ("exit", "exhausted")
        assert sim.stat_values()["cpu.issued"] == 0

    def test_gz_trace_through_component(self, tmp_path):
        path = tmp_path / "z.trace.gz"
        write_trace(path, [(0, False, 64), (64, False, 64)])
        sim = Simulation(seed=1)
        cpu = TraceReplayCore(sim, "cpu", Params({"trace": str(path)}))
        from repro.memory import SimpleMemory

        mem = SimpleMemory(sim, "mem", Params({"latency": "10ns"}))
        sim.connect(cpu, "mem", mem, "cpu", latency="1ns")
        result = sim.run()
        assert result.reason == "exit"
        assert cpu.s_completed.count == 2
