"""Tests for OS-noise injection in the skeleton-app engine (paper §4)."""

import pytest

from repro.config import build
from repro.core import Params, Simulation
from repro.miniapps import app_runtime_stats, build_app_machine
from repro.miniapps.base import AppRank, Compute


class _PureCompute(AppRank):
    def program(self):
        for it in range(self.iterations):
            yield Compute(1_000_000_000)  # 1 ms
            self.iteration_done()


def _run_pure(noise_hz, noise_dur, iterations=50, seed=3, name="r"):
    sim = Simulation(seed=seed)
    params = {"rank": 0, "n_ranks": 1, "iterations": iterations}
    if noise_hz:
        params.update({"noise_frequency": noise_hz,
                       "noise_duration": noise_dur})
    rank = _PureCompute(sim, name, Params(params))
    result = sim.run()
    assert result.reason == "exit"
    return rank


class TestNoiseInjection:
    def test_no_noise_by_default(self):
        rank = _run_pure(0, 0)
        assert rank.s_noise.count == 0
        assert rank.s_runtime.count == 50 * 1_000_000_000

    def test_noise_extends_runtime(self):
        noisy = _run_pure(1000, "50us")  # 5% net
        assert noisy.s_noise.count > 0
        assert noisy.s_runtime.count == \
            50 * 1_000_000_000 + noisy.s_noise.count

    def test_net_noise_fraction_statistical(self):
        """Injected noise converges to frequency x duration."""
        noisy = _run_pure(2000, "25us", iterations=200)  # 5% net
        fraction = noisy.s_noise.count / (200 * 1_000_000_000)
        assert fraction == pytest.approx(0.05, rel=0.3)

    def test_deterministic_per_seed(self):
        a = _run_pure(1000, "50us", seed=9)
        b = _run_pure(1000, "50us", seed=9)
        assert a.s_runtime.count == b.s_runtime.count

    def test_ranks_draw_independent_noise(self):
        """Two ranks with identical parameters see different detours
        (component-keyed seeding) — the precondition for collective
        amplification."""
        sim = Simulation(seed=3)
        params = {"rank": 0, "n_ranks": 1, "iterations": 50,
                  "noise_frequency": 1000, "noise_duration": "50us"}
        a = _PureCompute(sim, "a", Params(params))
        sim2 = Simulation(seed=3)
        b = _PureCompute(sim2, "b", Params(params))
        sim.run()
        sim2.run()
        assert a.s_noise.count != b.s_noise.count

    def test_negative_parameters_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            _PureCompute(sim, "bad", Params({
                "rank": 0, "n_ranks": 1, "noise_frequency": -1}))


class TestNoiseAmplification:
    """The Ferreira et al. phenomenon the paper's §4 describes."""

    def _slowdown(self, noise_hz, noise_dur, n=32, app="HPCCG"):
        def run(extra):
            graph = build_app_machine(f"miniapps.{app}", n,
                                      app_params=extra, iterations=5)
            sim = build(graph, seed=11)
            assert sim.run().reason == "exit"
            return app_runtime_stats(sim, n)["runtime_ps"]

        base = run({})
        noisy = run({"noise_frequency": noise_hz,
                     "noise_duration": noise_dur})
        return noisy / base - 1.0

    def test_low_frequency_noise_amplified_by_collectives(self):
        # 2.5% net noise as rare long detours: the fine-grained
        # collective app amplifies it far beyond 2.5%.
        slowdown = self._slowdown(10, "2.5ms")
        assert slowdown > 0.25

    def test_high_frequency_noise_absorbed(self):
        # Same 2.5% net as frequent tiny detours: mostly absorbed.
        slowdown = self._slowdown(2500, "10us")
        assert slowdown < 0.15

    def test_coarse_grained_app_absorbs_noise(self):
        # CTH's long compute phases absorb even low-frequency noise.
        slowdown = self._slowdown(10, "2.5ms", app="CTH")
        assert slowdown < 0.25
