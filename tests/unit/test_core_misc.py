"""Coverage for small core behaviours not exercised elsewhere."""

import pytest

from repro.core import (Component, Event, Params, Simulation, format_bytes,
                        format_time)
from repro.core.event import (PRIORITY_CLOCK, PRIORITY_EVENT, PRIORITY_SYNC,
                              CallbackEvent, EventRecord, NullEvent)
from repro.core.registry import RegistryError, is_registered, resolve
from tests.conftest import Sink, Source, Token


class TestEventRecord:
    def test_ordering_key(self):
        a = EventRecord(10, 50, 0, None, None)
        b = EventRecord(10, 50, 1, None, None)
        c = EventRecord(10, 25, 5, None, None)
        d = EventRecord(5, 90, 9, None, None)
        assert d < c < a < b
        assert a == EventRecord(10, 50, 0, None, None)
        assert hash(a) == hash(EventRecord(10, 50, 0, None, None))

    def test_priority_constants_ordered(self):
        assert PRIORITY_SYNC < PRIORITY_CLOCK < PRIORITY_EVENT

    def test_eq_other_type(self):
        assert EventRecord(1, 1, 1, None, None) != "record"


class TestEventClone:
    def test_clone_copies_slots(self):
        token = Token(value=7, hops=3)
        copy = token.clone()
        assert copy is not token
        assert copy.value == 7
        assert copy.hops == 3
        copy.value = 9
        assert token.value == 7

    def test_null_event(self):
        assert isinstance(NullEvent().clone(), NullEvent)

    def test_callback_event_invoke(self):
        seen = []
        event = CallbackEvent(seen.append, payload="x")
        event.invoke()
        assert seen == ["x"]


class TestFormatting:
    def test_format_time_bands(self):
        assert format_time(1) == "1ps"
        assert format_time(1_000) == "1.000ns"
        assert format_time(10**12) == "1.000s"

    def test_format_bytes_bands(self):
        assert format_bytes(1) == "1B"
        assert format_bytes(1536) == "1.50KiB"
        assert format_bytes(5 * 1024**4) == "5.00TiB"


class TestRegistryMisc:
    def test_is_registered(self):
        assert is_registered("testlib.Sink")
        assert not is_registered("nowhere.Nothing")

    def test_lazy_library_import(self):
        # Resolving by name alone must load the owning library.
        cls = resolve("memory.SimpleMemory")
        assert cls.__name__ == "SimpleMemory"

    def test_unknown_library_error_lists_options(self):
        with pytest.raises(RegistryError, match="registered"):
            resolve("quantum.Qubit")


class TestSimulationMisc:
    def test_run_without_finalize_skips_finish(self):
        sim = Simulation()
        calls = []

        class F(Component):
            def finish(self):
                calls.append(1)

        F(sim, "f")
        sim.run(finalize=False)
        assert calls == []
        sim.finish()
        assert calls == [1]

    def test_components_property_copies(self):
        sim = Simulation()
        Component(sim, "a")
        snapshot = sim.components
        snapshot.clear()
        assert sim.component("a")

    def test_links_property(self):
        sim = Simulation()
        a, b = Component(sim, "a"), Component(sim, "b")
        link = sim.connect(a, "p", b, "q", latency="3ns", name="L")
        assert sim.links == [link]
        assert link.name == "L"
        assert repr(link) == "Link('L', latency=3000ps)"

    def test_debug_gated_on_verbose(self, capsys):
        quiet = Simulation(verbose=False)
        Component(quiet, "c").debug("hidden")
        assert capsys.readouterr().out == ""
        loud = Simulation(verbose=True)
        Component(loud, "c").debug("shown")
        assert "shown" in capsys.readouterr().out

    def test_connect_port_form(self):
        sim = Simulation()
        a, b = Component(sim, "a"), Component(sim, "b")
        link = sim.connect(a.port("x"), b.port("y"), latency="2ns")
        assert link.latency == 2000

    def test_connect_requires_full_spec(self):
        from repro.core import SimulationError

        sim = Simulation()
        a = Component(sim, "a")
        with pytest.raises(SimulationError):
            sim.connect(a, "p")

    def test_pending_events_counts(self):
        sim = Simulation()
        Source(sim, "src", Params({"count": 1, "period": "1ns"}))
        sim.setup()
        assert sim.pending_events == 1

    def test_port_repr(self):
        sim = Simulation()
        comp = Component(sim, "c")
        assert "unconnected" in repr(comp.port("p"))

    def test_histogram_stat_in_component(self):
        sim = Simulation()
        comp = Component(sim, "c")
        hist = comp.stats.histogram("lat", low=0, bin_width=10, n_bins=4)
        hist.add(15)
        assert sim.stats()["c.lat"].count == 1
        assert "histogram" in sim.stat_table()
