"""Tests for the StatSampler time series and the CLI."""

import json

import pytest

from repro.__main__ import main, make_parser
from repro.analysis import StatSampler
from repro.config import ConfigGraph, build, load, save
from repro.core import Params, Simulation
from tests.conftest import Sink, Source


class TestStatSampler:
    def _machine(self, patterns="*", period="5ns"):
        sim = Simulation(seed=2)
        source = Source(sim, "src", Params({"count": 20, "period": "2ns"}))
        sink = Sink(sim, "sink")
        sim.connect(source, "out", sink, "in", latency="1ns")
        sampler = StatSampler(sim, "sampler", Params({
            "period": period, "patterns": patterns}))
        return sim, sampler

    def test_samples_taken_periodically(self):
        sim, sampler = self._machine()
        sim.run()
        # Run lasts 41ns (20 emits x 2ns + 1ns flight); 5ns period gives
        # samples at 5..40ns plus one final sample after quiescence.
        assert sampler.n_samples == 9
        assert sampler.samples[0]["time_ps"] == 5000
        assert sampler.samples[-1]["time_ps"] == 45000

    def test_pattern_filtering(self):
        sim, sampler = self._machine(patterns="sink.*")
        sim.run()
        assert sampler.keys() == ["sink.received"]
        assert "src.sent" not in sampler.samples[0]

    def test_multiple_patterns(self):
        sim, sampler = self._machine(patterns="sink.received, src.sent")
        sim.run()
        assert sampler.keys() == ["sink.received", "src.sent"]

    def test_series_monotone_counter(self):
        sim, sampler = self._machine(patterns="sink.received")
        sim.run()
        series = sampler.series("sink.received")
        assert series == sorted(series)
        assert series[-1] == 20

    def test_deltas_sum_to_range(self):
        sim, sampler = self._machine(patterns="sink.received")
        sim.run()
        series = sampler.series("sink.received")
        deltas = sampler.deltas("sink.received")
        assert sum(deltas) == series[-1] - series[0]
        assert all(d >= 0 for d in deltas)

    def test_unknown_key_rejected(self):
        sim, sampler = self._machine(patterns="sink.*")
        sim.run()
        with pytest.raises(KeyError):
            sampler.series("src.sent")

    def test_table_output(self, tmp_path):
        sim, sampler = self._machine(patterns="sink.received")
        sim.run()
        table = sampler.to_table()
        assert table.columns == ["time_ps", "sink.received"]
        assert len(table) == sampler.n_samples
        path = tmp_path / "ts.csv"
        table.to_csv(path)
        assert path.read_text().startswith("time_ps,sink.received")

    def test_sampler_excludes_itself(self):
        sim, sampler = self._machine(patterns="*")
        sim.run()
        assert not any(k.startswith("sampler.") for k in sampler.keys())

    def test_max_samples_cap(self):
        sim = Simulation(seed=2)
        Source(sim, "src", Params({"count": 1000, "period": "1ns"})) \
            .port("out")  # leave unconnected-sink test out: wire a sink
        sink = Sink(sim, "sink")
        sim.connect(sim.component("src"), "out", sink, "in", latency="1ns")
        sampler = StatSampler(sim, "sampler", Params({
            "period": "1ns", "max_samples": 10}))
        sim.run()
        assert sampler.n_samples == 10

    def test_buildable_from_config(self):
        graph = ConfigGraph("m")
        graph.component("src", "testlib.Source", {"count": 5, "period": "2ns"})
        graph.component("sink", "testlib.Sink")
        graph.component("sampler", "analysis.StatSampler",
                        {"period": "4ns", "patterns": "sink.*"})
        graph.link("src", "out", "sink", "in", latency="1ns")
        sim = build(graph, seed=1)
        sim.run()
        sampler = sim.component("sampler")
        assert sampler.n_samples > 0


class TestCli:
    def _write_machine(self, tmp_path):
        graph = ConfigGraph("cli-machine")
        graph.component("src", "testlib.Source", {"count": 10, "period": "2ns"})
        graph.component("sink", "testlib.Sink")
        graph.link("src", "out", "sink", "in", latency="1ns")
        path = tmp_path / "machine.json"
        save(graph, path)
        return path

    def test_info(self, tmp_path, capsys):
        path = self._write_machine(tmp_path)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli-machine" in out
        assert "testlib.Source" in out
        assert "minimum link latency: 1000 ps" in out

    def test_run_sequential(self, tmp_path, capsys):
        path = self._write_machine(tmp_path)
        assert main(["run", str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "run: exhausted" in out
        assert "sink.received" in out

    def test_run_with_max_time(self, tmp_path, capsys):
        path = self._write_machine(tmp_path)
        assert main(["run", str(path), "--max-time", "5ns"]) == 0
        assert "max_time" in capsys.readouterr().out

    def test_run_parallel(self, tmp_path, capsys):
        path = self._write_machine(tmp_path)
        assert main(["run", str(path), "--ranks", "2",
                     "--strategy", "round_robin"]) == 0
        out = capsys.readouterr().out
        assert "parallel run" in out
        assert "epochs" in out

    def test_run_stats_csv(self, tmp_path, capsys):
        path = self._write_machine(tmp_path)
        csv_path = tmp_path / "stats.csv"
        assert main(["run", str(path), "--stats-csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert "sink.received" in text

    @pytest.mark.parametrize("kind,extra", [
        ("torus", ["--dims", "3x3"]),
        ("fattree", ["--leaves", "4", "--spines", "2"]),
        ("dragonfly", ["--groups", "5", "--routers", "2", "--globals", "2"]),
        ("crossbar", ["--ports", "6"]),
    ])
    def test_topo_generation(self, tmp_path, capsys, kind, extra):
        out_path = tmp_path / f"{kind}.json"
        assert main(["topo", "--kind", kind, "-o", str(out_path)] + extra) == 0
        graph = load(out_path)
        assert len(graph) > 0
        assert graph.validate(resolve_types=True) == []
        doc = json.loads(out_path.read_text())
        assert doc["format"] == "pysst-config"

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["destroy"])
