"""Tests for the DVFS model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.dvfs import (DvfsParams, DvfsPoint, energy_optimal_frequency,
                              evaluate_frequency, frequency_sweep)

FREQS = [1.0e9, 1.4e9, 1.8e9, 2.2e9, 2.6e9, 3.0e9]


class TestDvfsParams:
    def test_voltage_interpolation(self):
        p = DvfsParams(f_min_hz=1e9, f_max_hz=3e9, v_min=0.8, v_max=1.2)
        assert p.voltage(1e9) == 0.8
        assert p.voltage(3e9) == 1.2
        assert p.voltage(2e9) == pytest.approx(1.0)

    def test_voltage_clamps(self):
        p = DvfsParams()
        assert p.voltage(0.1e9) == p.v_min
        assert p.voltage(10e9) == p.v_max

    def test_scales_reference_unity(self):
        p = DvfsParams()
        assert p.dynamic_energy_scale(p.f_ref_hz) == pytest.approx(1.0)
        assert p.static_power_scale(p.f_ref_hz) == pytest.approx(1.0)

    def test_dynamic_scale_is_v_squared(self):
        p = DvfsParams()
        assert p.dynamic_energy_scale(p.f_max_hz) == pytest.approx(
            (p.v_max / p.voltage(p.f_ref_hz)) ** 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DvfsParams(f_min_hz=3e9, f_max_hz=1e9)
        with pytest.raises(ValueError):
            DvfsParams(v_min=0)
        with pytest.raises(ValueError):
            DvfsParams(f_ref_hz=9e9)

    @given(st.floats(1e9, 3.2e9))
    @settings(max_examples=40)
    def test_voltage_monotone(self, freq):
        p = DvfsParams()
        assert p.voltage(freq) <= p.voltage(min(freq * 1.1, p.f_max_hz)) + 1e-12


class TestFrequencyEvaluation:
    def test_runtime_decreases_with_frequency(self):
        for workload in ("hpccg", "minife_fea"):
            sweep = frequency_sweep(workload, FREQS)
            runtimes = [sweep[f].runtime_ps for f in FREQS]
            assert runtimes == sorted(runtimes, reverse=True), workload

    def test_energy_curve_u_shaped(self):
        for workload in ("hpccg", "minife_fea"):
            sweep = frequency_sweep(workload, FREQS)
            optimum = energy_optimal_frequency(sweep)
            assert sweep[FREQS[0]].total_energy_j >= \
                sweep[optimum].total_energy_j
            assert sweep[FREQS[-1]].total_energy_j > \
                sweep[optimum].total_energy_j
            assert FREQS[0] < optimum < FREQS[-1] or optimum in FREQS

    def test_bandwidth_bound_saturates_compute_bound_scales(self):
        """The DVFS contrast: frequency buys much more speed for the
        compute-bound phase than for the bandwidth-bound solver."""
        hpccg = frequency_sweep("hpccg", [FREQS[0], FREQS[-1]])
        fea = frequency_sweep("minife_fea", [FREQS[0], FREQS[-1]])
        hpccg_speedup = (hpccg[FREQS[0]].runtime_ps
                         / hpccg[FREQS[-1]].runtime_ps)
        fea_speedup = fea[FREQS[0]].runtime_ps / fea[FREQS[-1]].runtime_ps
        assert fea_speedup > hpccg_speedup * 1.3

    def test_energy_cost_per_speedup_higher_when_bandwidth_bound(self):
        """Overclocking a memory-bound workload pays more energy per unit
        of speedup than a compute-bound one — crawl beats race-to-halt
        there."""
        def cost_per_speedup(workload):
            sweep = frequency_sweep(workload, [1.4e9, 3.0e9])
            energy_ratio = (sweep[3.0e9].total_energy_j
                            / sweep[1.4e9].total_energy_j)
            speedup = sweep[1.4e9].runtime_ps / sweep[3.0e9].runtime_ps
            return energy_ratio / speedup

        assert cost_per_speedup("hpccg") > \
            1.15 * cost_per_speedup("minife_fea")

    def test_point_accessors(self):
        point = evaluate_frequency("hpccg", 2.0e9)
        assert point.total_energy_j == pytest.approx(
            point.core_energy_j + point.dram_energy_j)
        assert point.energy_delay_product == pytest.approx(
            point.total_energy_j * point.runtime_s)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            energy_optimal_frequency({})
