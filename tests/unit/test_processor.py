"""Tests for processor models: mixes, traces, the abstract core, the GPU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Params, Simulation
from repro.memory import CacheHierarchy, DRAMModel, LevelSpec, NodeMemory
from repro.processor import (FERMI_M2090, KEPLER_LIKE, WORKLOADS, CoreConfig,
                             CoreTimingModel, GpuTimingModel, InstructionMix,
                             KernelProfile, MemoryProfile, MixCore, TraceSpec,
                             measure_hit_rates, workload)


class TestInstructionMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            InstructionMix(fp=0.5, int_alu=0.5, load=0.5, store=0.0,
                           branch=0.0)

    def test_positive_ilp_required(self):
        with pytest.raises(ValueError):
            InstructionMix(fp=0.5, int_alu=0.3, load=0.1, store=0.05,
                           branch=0.05, ilp=0)

    def test_memory_fraction(self):
        mix = InstructionMix(fp=0.4, int_alu=0.2, load=0.25, store=0.1,
                             branch=0.05)
        assert mix.memory_fraction == pytest.approx(0.35)

    def test_workload_library_complete(self):
        for name in ("hpccg", "lulesh", "minife_fea", "minife_solver",
                     "charon_fea", "charon_solver", "cth", "sage", "xnobel"):
            assert name in WORKLOADS
            spec = workload(name)
            assert spec.name == name

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("doom")

    def test_solver_more_memory_bound_than_fea(self):
        """The structural fact behind the validation studies."""
        for app in ("minife", "charon"):
            fea = workload(f"{app}_fea")
            solver = workload(f"{app}_solver")
            assert solver.memory.dram_bytes_per_instr > \
                5 * fea.memory.dram_bytes_per_instr

    def test_charon_fea_worse_l2_l3_than_minife(self):
        """The Fig. 4 divergence is encoded in the profiles."""
        minife = workload("minife_fea").memory.hit_rates
        charon = workload("charon_fea").memory.hit_rates
        assert abs(minife["L1"] - charon["L1"]) / charon["L1"] < 0.05
        assert minife["L2"] > 2.5 * charon["L2"]
        assert minife["L3"] > 2.5 * charon["L3"]

    def test_scaled(self):
        spec = workload("hpccg").scaled(2.0)
        assert spec.instructions_per_iteration == \
            2 * workload("hpccg").instructions_per_iteration


class TestMemoryProfile:
    def test_miss_chain(self):
        prof = MemoryProfile({"L1": 0.9, "L2": 0.5}, dram_bytes_per_instr=1.0)
        misses = prof.miss_per_instr(0.4)
        assert misses["L1"] == pytest.approx(0.04)
        assert misses["L2"] == pytest.approx(0.02)
        assert prof.dram_accesses_per_instr(0.4) == pytest.approx(0.02)


class TestCoreTimingModel:
    def _model(self, width, ilp=2.2, name="hpccg"):
        return CoreTimingModel(CoreConfig(issue_width=width), workload(name))

    def test_effective_issue_saturates_at_ilp(self):
        narrow = self._model(1).effective_issue()
        wide = self._model(8).effective_issue()
        wider = self._model(16).effective_issue()
        assert narrow < wide < workload("hpccg").mix.ilp
        assert (wider - wide) < (wide - narrow)  # diminishing returns

    def test_block_decomposition_positive(self):
        timing = self._model(2).block(100_000, DRAMModel("DDR3-1333").tech)
        assert timing.compute_ps > 0
        assert timing.cache_stall_ps > 0
        assert timing.dram_latency_ps > 0
        assert timing.dram_bytes == 500_000  # 5.0 B/instr calibration
        assert timing.latency_bound_ps == (timing.compute_ps
                                           + timing.cache_stall_ps
                                           + timing.dram_latency_ps)

    def test_wider_core_faster_latency_bound(self):
        t1 = self._model(1).block(100_000)
        t8 = self._model(8).block(100_000)
        assert t8.compute_ps < t1.compute_ps

    def test_standalone_runtime_roofline(self):
        model = self._model(8)
        ddr2 = model.standalone_runtime_ps(1_000_000, DRAMModel("DDR2-800"))
        gddr5 = model.standalone_runtime_ps(1_000_000, DRAMModel("GDDR5"))
        assert ddr2 > gddr5

    def test_sharers_slow_bandwidth_bound_runtime(self):
        model = self._model(4)
        dram = DRAMModel("DDR3-1333")
        solo = model.standalone_runtime_ps(1_000_000, dram, n_sharers=1)
        shared = model.standalone_runtime_ps(1_000_000, dram, n_sharers=8)
        assert shared > solo

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)
        with pytest.raises(ValueError):
            CoreConfig(freq_hz=0)
        with pytest.raises(ValueError):
            CoreConfig(mlp=0.5)

    @given(st.integers(1, 16), st.integers(10_000, 1_000_000))
    @settings(max_examples=40)
    def test_block_scales_linearly_with_instructions(self, width, n):
        model = CoreTimingModel(CoreConfig(issue_width=width),
                                workload("lulesh"))
        one = model.block(n)
        two = model.block(2 * n)
        assert two.compute_ps == pytest.approx(2 * one.compute_ps, rel=0.01)
        assert two.dram_bytes == pytest.approx(2 * one.dram_bytes, rel=0.01)


class TestMixCoreComponent:
    def _run(self, **overrides):
        params = {"workload": "hpccg", "instructions": 300_000,
                  "issue_width": 2, "clock": "2GHz"}
        params.update(overrides)
        # "technology" configures the memory side, not the core.
        technology = params.pop("technology", "DDR3-1333")
        sim = Simulation(seed=3)
        core = MixCore(sim, "core", Params(params))
        mem = NodeMemory(sim, "mem", Params({
            "technology": technology,
            "n_ports": 1}))
        sim.connect(core, "mem", mem, "core0", latency="1ns")
        result = sim.run()
        assert result.reason == "exit"
        return core, mem

    def test_retires_all_instructions(self):
        core, _ = self._run()
        assert core.retired == 300_000
        assert core.s_instructions.count == 300_000

    def test_block_count(self):
        core, _ = self._run(block=100_000)
        assert core.s_blocks.count == 3

    def test_partial_last_block(self):
        core, _ = self._run(instructions=250_000, block=100_000)
        assert core.retired == 250_000
        assert core.s_blocks.count == 3

    def test_memory_technology_changes_runtime(self):
        slow, _ = self._run(technology="DDR2-800", instructions=1_000_000)
        fast, _ = self._run(technology="GDDR5", instructions=1_000_000)
        assert slow.runtime_ps() > fast.runtime_ps()

    def test_width_speedup_saturating(self):
        runtimes = {
            w: self._run(issue_width=w, instructions=1_000_000)[0].runtime_ps()
            for w in (1, 2, 4, 8)
        }
        assert runtimes[1] > runtimes[2] > runtimes[4] > runtimes[8]
        gain_12 = runtimes[1] / runtimes[2]
        gain_48 = runtimes[4] / runtimes[8]
        assert gain_12 > gain_48  # diminishing returns

    def test_runs_without_memory_port(self):
        sim = Simulation(seed=3)
        core = MixCore(sim, "core", Params({"workload": "minife_fea",
                                            "instructions": 200_000}))
        result = sim.run()
        assert result.reason == "exit"
        assert core.retired == 200_000

    def test_dram_traffic_accounted(self):
        core, mem = self._run(instructions=1_000_000)
        expected = workload("hpccg").memory.dram_bytes_per_instr * 1_000_000
        assert mem.s_bytes.count == pytest.approx(expected, rel=0.02)


class TestTraceSpec:
    def test_probabilities_must_sum(self):
        from repro.processor import Region

        with pytest.raises(ValueError):
            TraceSpec(regions=[Region(1024, 0.5)], stream_probability=0.2)

    def test_generation_deterministic(self):
        spec = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.8,
                                  stream_probability=0.1, seed=5)
        a1, w1 = spec.generate(1000)
        spec2 = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.8,
                                   stream_probability=0.1, seed=5)
        a2, w2 = spec2.generate(1000)
        assert (a1 == a2).all()
        assert (w1 == w2).all()

    def test_hot_cold_hit_rate_reflects_hot_fraction(self):
        hierarchy = CacheHierarchy([
            LevelSpec("L1", 2048, ways=8, latency_ps=1000)])
        spec = TraceSpec.hot_cold(512, 4 << 20, hot_fraction=0.9, seed=6)
        rates = measure_hit_rates(spec, hierarchy, n=20_000, warmup=5_000)
        assert 0.8 < rates["L1"] < 1.0

    def test_stream_never_reuses(self):
        from repro.processor import Region

        spec = TraceSpec(regions=[Region(64, 0.0)], stream_probability=1.0,
                         seed=7)
        addrs, _ = spec.generate(1000)
        assert len(set(addrs.tolist())) == 1000

    def test_for_workload_ranks_workloads_correctly(self):
        """Traces derived for the two FEA phases must reproduce the
        minife >> charon L2 hit-rate ordering when measured."""
        from repro.miniapps.phases import cache_hit_rates

        minife = cache_hit_rates("minife_fea", n_refs=40_000, warmup=60_000)
        charon = cache_hit_rates("charon_fea", n_refs=40_000, warmup=60_000)
        assert minife["L2"] > 2 * charon["L2"]
        assert abs(minife["L1"] - charon["L1"]) < 0.05

    def test_write_fraction_respected(self):
        spec = TraceSpec.hot_cold(1024, 65536, hot_fraction=0.9,
                                  write_fraction=0.5, seed=8)
        _, writes = spec.generate(10_000)
        assert 0.45 < writes.mean() < 0.55


class TestGpuModel:
    def test_occupancy_limited_by_registers(self):
        gpu = GpuTimingModel(FERMI_M2090)
        light = KernelProfile("light", 100, state_bytes_per_thread=64,
                              mem_bytes_per_thread=10, registers_per_thread=16)
        heavy = KernelProfile("heavy", 100, state_bytes_per_thread=64,
                              mem_bytes_per_thread=10, registers_per_thread=63)
        assert gpu.occupancy(light) > gpu.occupancy(heavy)

    def test_occupancy_limited_by_shared_memory(self):
        gpu = GpuTimingModel(FERMI_M2090)
        kernel = KernelProfile("sh", 100, 64, 10, shared_bytes_per_thread=512,
                               registers_per_thread=16)
        assert gpu.occupancy(kernel) <= FERMI_M2090.shared_bytes_per_sm // 512

    def test_occupancy_warp_granular(self):
        gpu = GpuTimingModel(FERMI_M2090)
        kernel = KernelProfile("k", 100, 64, 10, registers_per_thread=63)
        assert gpu.occupancy(kernel) % 32 == 0

    def test_spill_threshold(self):
        gpu = GpuTimingModel(FERMI_M2090)
        assert gpu.spill_bytes(KernelProfile("a", 1, 200, 1)) == 0
        assert gpu.spill_bytes(KernelProfile("b", 1, 300, 1)) == 300 - 252

    def test_spilling_makes_kernel_bandwidth_bound(self):
        gpu = GpuTimingModel(FERMI_M2090)
        compute_heavy = KernelProfile("c", 5000, state_bytes_per_thread=200,
                                      mem_bytes_per_thread=16)
        spilled = KernelProfile("s", 5000, state_bytes_per_thread=900,
                                mem_bytes_per_thread=16, spill_reuse=3)
        n = 1 << 20
        assert not gpu.estimate(compute_heavy, n).bandwidth_bound
        assert gpu.estimate(spilled, n).bandwidth_bound
        assert gpu.estimate(spilled, n).runtime_s > \
            gpu.estimate(compute_heavy, n).runtime_s

    def test_more_registers_removes_spill(self):
        kernel = KernelProfile("k", 2000, state_bytes_per_thread=700,
                               mem_bytes_per_thread=64)
        fermi = GpuTimingModel(FERMI_M2090)
        kepler = GpuTimingModel(KEPLER_LIKE)
        assert fermi.spill_bytes(kernel) > 0
        assert kepler.spill_bytes(kernel) == 0

    def test_with_optimizations_reduces_state(self):
        kernel = KernelProfile("k", 1, state_bytes_per_thread=700,
                               mem_bytes_per_thread=1)
        tuned = kernel.with_optimizations(state_reduction_bytes=100,
                                          shared_bytes=64)
        assert tuned.state_bytes_per_thread == 536
        assert tuned.shared_bytes_per_thread == 64

    def test_pcie_time(self):
        gpu = GpuTimingModel(FERMI_M2090)
        assert gpu.pcie_time(6e9) == pytest.approx(1.0)


class TestMiniFEGpuStudy:
    def test_fig8_shape(self):
        from repro.miniapps import MiniFEGpuStudy

        table = MiniFEGpuStudy(48).table()
        assert table["structure"].speedup < 1.0  # slowdown
        assert 2.5 <= table["fea"].speedup <= 6.5
        assert 2.0 <= table["solve"].speedup <= 4.0
        # The paper's ordering: assembly gains most, then solve.
        assert table["fea"].speedup > table["solve"].speedup > \
            table["structure"].speedup

    def test_fea_bandwidth_bound_by_spilling(self):
        from repro.miniapps import MiniFEGpuStudy

        study = MiniFEGpuStudy(48)
        estimate = study.fea_estimate(tuned=True)
        assert estimate.bandwidth_bound
        assert estimate.spill_bytes_per_thread > 250

    def test_tuning_helps(self):
        from repro.miniapps import MiniFEGpuStudy

        study = MiniFEGpuStudy(48)
        assert study.fea_estimate(tuned=False).runtime_s > \
            study.fea_estimate(tuned=True).runtime_s

    def test_future_hardware_fixes_spilling(self):
        from repro.miniapps import MiniFEGpuStudy

        fermi = MiniFEGpuStudy(48)
        kepler = MiniFEGpuStudy(48, gpu=KEPLER_LIKE)
        assert kepler.fea_estimate().spill_bytes_per_thread == 0
        assert kepler.fea().speedup > fermi.fea().speedup

    def test_problem_size_validation(self):
        from repro.miniapps import MiniFEGpuStudy

        with pytest.raises(ValueError):
            MiniFEGpuStudy(1)
