"""Tests for the validation-metric framework and result tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (Diagnostic, ResultTable, Thresholds,
                            ValidationStudy, Verdict, relative_to)


class TestThresholds:
    def test_bands(self):
        t = Thresholds(pass_below=0.1, caution_below=0.25)
        assert t.assess(0.05) is Verdict.PASS
        assert t.assess(0.10) is Verdict.PASS
        assert t.assess(0.20) is Verdict.CAUTION
        assert t.assess(0.30) is Verdict.FAIL

    def test_absolute_value_used(self):
        t = Thresholds()
        assert t.assess(-0.05) is Verdict.PASS

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            Thresholds(pass_below=0.3, caution_below=0.1)

    @given(st.floats(0, 10, allow_nan=False))
    @settings(max_examples=50)
    def test_total_function(self, x):
        assert Thresholds().assess(x) in (Verdict.PASS, Verdict.CAUTION,
                                          Verdict.FAIL)


class TestDiagnostic:
    def test_eq4_difference(self):
        d = Diagnostic("d", baseline=10.0, miniapp=8.0)
        assert d.difference == 2.0
        assert d.proportional_difference == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert Diagnostic("d", 0.0, 0.0).proportional_difference == 0.0
        assert Diagnostic("d", 0.0, 1.0).proportional_difference == float("inf")
        assert Diagnostic("d", 0.0, 1.0).verdict is Verdict.FAIL

    def test_verdict_uses_thresholds(self):
        d = Diagnostic("d", 1.0, 0.95, thresholds=Thresholds(0.02, 0.04))
        assert d.verdict is Verdict.FAIL


class TestValidationStudy:
    def test_paper_fig3_style_study(self):
        """miniFE within 4% of Charon on memory-speed sensitivity: pass."""
        study = ValidationStudy("memory-speed")
        charon = {"800": 1.38, "1066": 1.09, "1333": 1.0}
        minife = {"800": 1.44, "1066": 1.13, "1333": 1.0}
        study.add_series("relative", charon, minife,
                         thresholds=Thresholds(0.08, 0.2))
        assert study.summary() is Verdict.PASS

    def test_paper_fig4_style_study(self):
        """FEA cache: L1 passes, L2/L3 fail (the paper's verdict)."""
        study = ValidationStudy("fea-cache")
        study.add("L1", baseline=0.951, miniapp=0.972)
        study.add("L2", baseline=0.114, miniapp=0.852)
        study.add("L3", baseline=0.268, miniapp=0.757)
        verdicts = study.verdicts()
        assert verdicts["L1"] is Verdict.PASS
        assert verdicts["L2"] is Verdict.FAIL
        assert study.summary() is Verdict.FAIL

    def test_caution_summary(self):
        study = ValidationStudy("s")
        study.add("a", 1.0, 1.05)
        study.add("b", 1.0, 1.2)
        assert study.summary() is Verdict.CAUTION
        assert study.count(Verdict.PASS) == 1
        assert study.count(Verdict.CAUTION) == 1

    def test_empty_study_rejected(self):
        with pytest.raises(ValueError):
            ValidationStudy("empty").summary()

    def test_add_series_intersects_keys(self):
        study = ValidationStudy("s")
        added = study.add_series("x", {"a": 1, "b": 2}, {"b": 2, "c": 3})
        assert len(added) == 1
        assert added[0].name == "x[b]"

    def test_report_renders(self):
        study = ValidationStudy("render")
        study.add("metric", 2.0, 1.9, note="close")
        text = study.report()
        assert "render" in text
        assert "metric" in text
        assert "pass" in text


class TestResultTable:
    def test_round_trip(self):
        t = ResultTable(["app", "bw", "slowdown"], title="Fig 9")
        t.add_row(app="cth", bw="full", slowdown=1.0)
        t.add_row(app="cth", bw="1/8", slowdown=2.2)
        assert len(t) == 2
        assert t.column("slowdown") == [1.0, 2.2]

    def test_unknown_column_rejected(self):
        t = ResultTable(["a"])
        with pytest.raises(KeyError):
            t.add_row(b=1)
        with pytest.raises(KeyError):
            t.column("b")

    def test_render_contains_values(self):
        t = ResultTable(["name", "value"], title="T")
        t.add_row(name="x", value=1.25)
        text = t.render()
        assert "T" in text and "x" in text and "1.25" in text

    def test_render_handles_none(self):
        t = ResultTable(["a"])
        t.add_row(a=None)
        assert "-" in t.render()

    def test_csv_output(self, tmp_path):
        t = ResultTable(["a", "b"])
        t.add_row(a=1, b=2)
        path = tmp_path / "out.csv"
        text = t.to_csv(path)
        assert path.read_text() == text
        assert "a,b" in text
        assert "1,2" in text

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable([])

    def test_relative_to(self):
        assert relative_to([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ZeroDivisionError):
            relative_to([1.0], 0.0)
