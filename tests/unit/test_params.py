"""Unit tests for repro.core.params."""

import pytest

from repro.core import ParamError, Params


class TestBasicFinds:
    def test_find_present(self):
        assert Params({"a": 1}).find("a") == 1

    def test_find_missing_raises(self):
        with pytest.raises(ParamError):
            Params({}).find("a")

    def test_find_default(self):
        assert Params({}).find("a", 7) == 7

    def test_find_str(self):
        assert Params({"a": 42}).find_str("a") == "42"

    def test_find_int_from_string(self):
        assert Params({"a": "42"}).find_int("a") == 42

    def test_find_int_hex(self):
        assert Params({"a": "0x10"}).find_int("a") == 16

    def test_find_int_bad(self):
        with pytest.raises(ParamError):
            Params({"a": "many"}).find_int("a")

    def test_find_float(self):
        assert Params({"a": "2.5"}).find_float("a") == 2.5

    def test_find_bool_variants(self):
        p = Params({"a": "true", "b": "0", "c": "YES", "d": False, "e": "off"})
        assert p.find_bool("a") is True
        assert p.find_bool("b") is False
        assert p.find_bool("c") is True
        assert p.find_bool("d") is False
        assert p.find_bool("e") is False

    def test_find_bool_bad(self):
        with pytest.raises(ParamError):
            Params({"a": "maybe"}).find_bool("a")


class TestUnitFinds:
    def test_find_time(self):
        assert Params({"lat": "10ns"}).find_time("lat") == 10_000

    def test_find_time_default(self):
        assert Params({}).find_time("lat", "1ns") == 1000

    def test_find_period(self):
        assert Params({"clock": "2GHz"}).find_period("clock") == 500

    def test_find_freq(self):
        assert Params({"clock": "800MHz"}).find_freq_hz("clock") == 8e8

    def test_find_size(self):
        assert Params({"size": "32KB"}).find_size_bytes("size") == 32768

    def test_find_bandwidth(self):
        assert Params({"bw": "1.6GB/s"}).find_bandwidth("bw") == 1.6e9

    def test_bad_unit_raises_param_error(self):
        with pytest.raises(ParamError):
            Params({"lat": "sluggish"}).find_time("lat")


class TestStructure:
    def test_scoped(self):
        p = Params({"l1.size": "32KB", "l1.ways": "8", "l2.size": "256KB"})
        l1 = p.scoped("l1")
        assert l1.find_size_bytes("size") == 32768
        assert l1.find_int("ways") == 8
        assert "l2.size" not in l1

    def test_scoped_trailing_dot_equivalent(self):
        p = Params({"x.y": 1})
        assert p.scoped("x").find_int("y") == p.scoped("x.").find_int("y") == 1

    def test_merged_overrides(self):
        p = Params({"a": 1, "b": 2}).merged({"b": 3, "c": 4})
        assert p.find_int("a") == 1
        assert p.find_int("b") == 3
        assert p.find_int("c") == 4

    def test_merged_none(self):
        assert Params({"a": 1}).merged(None).find_int("a") == 1

    def test_unused_keys_tracking(self):
        p = Params({"used": 1, "unused": 2})
        p.find_int("used")
        assert p.unused_keys() == {"unused"}

    def test_scoping_consumes_parent_keys(self):
        p = Params({"l1.size": "32KB", "top": 1})
        p.scoped("l1")
        assert p.unused_keys() == {"top"}

    def test_mapping_protocol(self):
        p = Params({"a": 1, "b": 2})
        assert len(p) == 2
        assert set(p) == {"a", "b"}
        assert p["a"] == 1
        assert dict(p) == {"a": 1, "b": 2}

    def test_as_dict_copies(self):
        p = Params({"a": 1})
        d = p.as_dict()
        d["a"] = 99
        assert p.find_int("a") == 1

    def test_error_mentions_scope(self):
        with pytest.raises(ParamError, match="l1"):
            Params({"l1.x": 1}).scoped("l1").find("missing")
