"""Unit tests for repro.core.units (time algebra, unit parsing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.core.units import UnitError


class TestParseTime:
    def test_nanoseconds(self):
        assert units.parse_time("1ns") == 1000

    def test_microseconds(self):
        assert units.parse_time("2.5us") == 2_500_000

    def test_milliseconds(self):
        assert units.parse_time("3ms") == 3 * 10**9

    def test_seconds(self):
        assert units.parse_time("1s") == 10**12

    def test_picoseconds(self):
        assert units.parse_time("7ps") == 7

    def test_bare_number_uses_default_unit(self):
        assert units.parse_time(250) == 250
        assert units.parse_time("250") == 250
        assert units.parse_time(3, default_unit="ns") == 3000

    def test_float_input(self):
        assert units.parse_time(1.5, default_unit="ns") == 1500

    def test_whitespace_tolerated(self):
        assert units.parse_time("  10 ns ") == 10_000

    def test_case_insensitive(self):
        assert units.parse_time("1NS") == 1000

    def test_subpicosecond_rejected(self):
        with pytest.raises(UnitError):
            units.parse_time("0.1ps")

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            units.parse_time("-5ns")

    def test_garbage_rejected(self):
        with pytest.raises(UnitError):
            units.parse_time("fastish")

    def test_unknown_unit_rejected(self):
        with pytest.raises(UnitError):
            units.parse_time("1parsec")

    def test_zero_allowed(self):
        assert units.parse_time("0ns") == 0


class TestFrequency:
    def test_ghz(self):
        assert units.parse_freq_hz("2GHz") == 2e9

    def test_mhz(self):
        assert units.parse_freq_hz("1333MHz") == 1.333e9

    def test_period_1ghz(self):
        assert units.freq_to_period("1GHz") == 1000

    def test_period_2ghz(self):
        assert units.freq_to_period("2GHz") == 500

    def test_period_rounding(self):
        # 3 GHz -> 333.33ps, rounded to 333
        assert units.freq_to_period("3GHz") == 333

    def test_nonpositive_rejected(self):
        with pytest.raises(UnitError):
            units.parse_freq_hz("0GHz")
        with pytest.raises(UnitError):
            units.parse_freq_hz("-1MHz")

    def test_too_fast_rejected(self):
        with pytest.raises(UnitError):
            units.freq_to_period("10THz")  # sub-ps period


class TestSizes:
    def test_kb_is_binary(self):
        assert units.parse_size_bytes("64KB") == 64 * 1024

    def test_kib(self):
        assert units.parse_size_bytes("1KiB") == 1024

    def test_mb_gb(self):
        assert units.parse_size_bytes("1MB") == 1024**2
        assert units.parse_size_bytes("2GB") == 2 * 1024**3

    def test_plain_bytes(self):
        assert units.parse_size_bytes("512") == 512
        assert units.parse_size_bytes(4096) == 4096

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            units.parse_size_bytes("-1KB")


class TestBandwidth:
    def test_gbs_is_decimal(self):
        assert units.parse_bandwidth("3.2GB/s") == 3.2e9

    def test_mbs(self):
        assert units.parse_bandwidth("400MB/s") == 4e8

    def test_numeric_passthrough(self):
        assert units.parse_bandwidth(1e9) == 1e9

    def test_bytes_time(self):
        # 64 bytes at 6.4 GB/s = 10ns
        assert units.bytes_time(64, 6.4e9) == 10_000

    def test_bytes_time_minimum_1ps(self):
        assert units.bytes_time(1, 1e15) == 1

    def test_bytes_time_zero_bytes(self):
        assert units.bytes_time(0, 1e9) == 0

    def test_bytes_time_bad_bandwidth(self):
        with pytest.raises(UnitError):
            units.bytes_time(100, 0)


class TestFormatting:
    def test_format_time(self):
        assert units.format_time(0) == "0ps"
        assert units.format_time(532) == "532ps"
        assert units.format_time(1500) == "1.500ns"
        assert units.format_time(2_500_000) == "2.500us"

    def test_format_bytes(self):
        assert units.format_bytes(512) == "512B"
        assert units.format_bytes(2048) == "2.00KiB"
        assert units.format_bytes(3 * 1024**3) == "3.00GiB"


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**9))
    def test_time_roundtrip_via_ps_string(self, ps):
        assert units.parse_time(f"{ps}ps") == ps

    @given(st.integers(min_value=1, max_value=10**6))
    def test_freq_period_inverse(self, mhz):
        period = units.freq_to_period(f"{mhz}MHz")
        implied_hz = units.PS_PER_SEC / period
        # The period is rounded to the 1 ps grid, so the relative error
        # of the implied frequency is bounded by 0.5/period.
        assert abs(implied_hz - mhz * 1e6) / (mhz * 1e6) <= 0.5 / period + 1e-9

    @given(st.integers(min_value=1, max_value=2**40))
    def test_size_bytes_identity(self, n):
        assert units.parse_size_bytes(str(n)) == n

    @given(
        st.integers(min_value=1, max_value=10**9),
        st.floats(min_value=1e6, max_value=1e12, allow_nan=False),
    )
    def test_bytes_time_monotone_in_bytes(self, nbytes, bw):
        t1 = units.bytes_time(nbytes, bw)
        t2 = units.bytes_time(nbytes * 2, bw)
        assert t2 >= t1 >= 1
