"""Tests for the MSI snooping coherence protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Params, Simulation
from repro.memory.coherence import (AccessOutcome, CoherentBusComponent,
                                    CoherentCache, SnoopBus, State)
from repro.memory.events import MemRequest


class TestProtocolTransitions:
    def test_read_miss_fetches_shared(self):
        bus = SnoopBus(2)
        outcome = bus.read(0, 0x100)
        assert not outcome.hit
        assert outcome.supplied_by == "memory"
        assert bus.state_of(0, 0x100) is State.S

    def test_read_hit_after_fill(self):
        bus = SnoopBus(2)
        bus.read(0, 0x100)
        assert bus.read(0, 0x100).hit

    def test_two_readers_share(self):
        bus = SnoopBus(2)
        bus.read(0, 0x100)
        bus.read(1, 0x100)
        assert bus.state_of(0, 0x100) is State.S
        assert bus.state_of(1, 0x100) is State.S
        assert sorted(bus.sharers(0x100)) == [0, 1]

    def test_write_miss_takes_modified(self):
        bus = SnoopBus(2)
        outcome = bus.write(0, 0x100)
        assert not outcome.hit
        assert bus.state_of(0, 0x100) is State.M

    def test_write_to_shared_upgrades_and_invalidates(self):
        bus = SnoopBus(2)
        bus.read(0, 0x100)
        bus.read(1, 0x100)
        outcome = bus.write(0, 0x100)
        assert outcome.upgraded
        assert bus.state_of(0, 0x100) is State.M
        assert bus.state_of(1, 0x100) is State.I
        assert bus.stats.invalidations == 1
        assert bus.stats.upgrades == 1

    def test_read_of_modified_line_downgrades_owner(self):
        bus = SnoopBus(2)
        bus.write(0, 0x100)
        outcome = bus.read(1, 0x100)
        assert outcome.supplied_by == "cache"
        assert bus.state_of(0, 0x100) is State.S
        assert bus.state_of(1, 0x100) is State.S
        assert bus.stats.cache_to_cache == 1

    def test_write_steals_modified_line(self):
        bus = SnoopBus(2)
        bus.write(0, 0x100)
        bus.write(1, 0x100)
        assert bus.state_of(0, 0x100) is State.I
        assert bus.state_of(1, 0x100) is State.M

    def test_ping_pong_writes_count_transactions(self):
        bus = SnoopBus(2)
        for _ in range(5):
            bus.write(0, 0x100)
            bus.write(1, 0x100)
        # First write is a BusRdX; every ownership steal is another.
        assert bus.stats.bus_transactions == 10

    def test_eviction_writes_back_dirty(self):
        bus = SnoopBus(1, capacity_lines=2)
        bus.write(0, 0 * 64)
        bus.read(0, 1 * 64)
        bus.read(0, 2 * 64)  # evicts block 0 (dirty)
        assert bus.stats.writebacks == 1
        # Re-reading block 0 must observe the written version.
        bus.read(0, 0 * 64)  # stale-read assertion inside would fire

    def test_line_granularity(self):
        bus = SnoopBus(2, line_size=64)
        bus.write(0, 0x100)
        assert bus.read(0, 0x13F).hit  # same line
        assert not bus.read(0, 0x140).hit  # next line

    def test_validation(self):
        with pytest.raises(ValueError):
            SnoopBus(0)
        with pytest.raises(ValueError):
            SnoopBus(2, capacity_lines=0)


class TestProtocolProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 3),            # cache id
                  st.integers(0, 15),           # block
                  st.booleans()),               # is_write
        min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_invariants_under_random_traffic(self, ops):
        """SWMR + freshness hold for arbitrary interleavings.

        (The SnoopBus itself asserts single-writer, M-excludes-S and
        no-stale-reads on every access; this test drives those
        assertions hard and re-checks globally at the end.)
        """
        bus = SnoopBus(4, capacity_lines=8)
        for cache_id, block, is_write in ops:
            addr = block * 64
            if is_write:
                bus.write(cache_id, addr)
            else:
                bus.read(cache_id, addr)
        bus.check_invariants()
        s = bus.stats
        assert s.invalidations >= 0
        assert s.cache_to_cache + s.memory_fetches <= s.bus_transactions

    @given(st.integers(2, 4), st.integers(1, 20))
    @settings(max_examples=30)
    def test_false_sharing_ping_pong(self, n_caches, rounds):
        """Alternating writers to one line invalidate each other every
        round — the false-sharing signature."""
        bus = SnoopBus(n_caches)
        for r in range(rounds):
            bus.write(r % n_caches, 0x200)
        if n_caches >= 2 and rounds >= 2:
            assert bus.stats.invalidations >= rounds - 1


class TestCoherentComponents:
    def _machine(self, n_cores=2):
        sim = Simulation(seed=5)
        bus = CoherentBusComponent(sim, "bus", Params({
            "n_caches": n_cores, "capacity_lines": 32}))
        caches = []
        for i in range(n_cores):
            cache = CoherentCache(sim, f"l1_{i}", Params({"cache_id": i}))
            sim.connect(cache, "bus", bus, f"cache{i}", latency="1ns")
            caches.append(cache)
        return sim, bus, caches

    def test_traffic_through_components(self):
        from repro.processor import TrafficGenerator

        sim, bus, caches = self._machine(2)
        cpus = []
        for i in range(2):
            cpu = TrafficGenerator(sim, f"cpu{i}", Params({
                "requests": 64, "pattern": "random", "footprint": "4KB",
                "outstanding": 1, "write_fraction": 0.3}))
            sim.connect(cpu, "mem", caches[i], "cpu", latency="1ns")
            cpus.append(cpu)
        result = sim.run()
        assert result.reason == "exit"
        for cpu in cpus:
            assert cpu.s_completed.count == 64
        # Shared 4KB footprint with writes: coherence traffic happened.
        assert bus.protocol.stats.invalidations > 0
        bus.protocol.check_invariants()

    def test_hits_avoid_the_bus(self):
        from repro.processor import TrafficGenerator

        sim, bus, caches = self._machine(1)
        cpu = TrafficGenerator(sim, "cpu", Params({
            "requests": 64, "pattern": "stream", "stride": 64,
            "footprint": "1KB", "outstanding": 1}))  # 16 lines, repasses
        sim.connect(cpu, "mem", caches[0], "cpu", latency="1ns")
        sim.run()
        assert caches[0].s_hits.count == 48  # 64 - 16 cold misses
        assert bus.s_transactions.count == 16

    def test_cache_requires_bus_connection(self):
        sim = Simulation()
        CoherentCache(sim, "orphan", Params({"cache_id": 0}))
        with pytest.raises(RuntimeError, match="must be connected"):
            sim.setup()

    def test_false_sharing_slows_writers(self):
        """Two cores ping-ponging one line run slower than two cores on
        disjoint lines — the component-level false-sharing effect."""
        from repro.processor import TrafficGenerator

        def runtime(footprints):
            sim, bus, caches = self._machine(2)
            cpus = []
            for i in range(2):
                cpu = TrafficGenerator(sim, f"cpu{i}", Params({
                    "requests": 64, "pattern": "stream", "stride": 0,
                    "footprint": footprints[i], "outstanding": 1,
                    "write_fraction": 1.0}))
                sim.connect(cpu, "mem", caches[i], "cpu", latency="1ns")
                cpus.append(cpu)
            sim.run()
            return max(c.s_runtime.count for c in cpus)

        # stride 0 = hammer one address; same footprint -> same line.
        shared = runtime(["64", "64"])
        # Disjoint lines: give core 1 a different base via footprint
        # trickery is not possible with stride 0, so compare against a
        # single-core run instead.
        sim, bus, caches = self._machine(2)
        from repro.processor import TrafficGenerator as TG

        cpu = TG(sim, "solo", Params({
            "requests": 64, "pattern": "stream", "stride": 0,
            "footprint": "64", "outstanding": 1, "write_fraction": 1.0}))
        sim.connect(cpu, "mem", caches[0], "cpu", latency="1ns")
        sim.run()
        solo = cpu.s_runtime.count
        assert shared > 1.5 * solo
