"""Tests for the conservative parallel engine.

The load-bearing property: a parallel run must produce the same
statistics and end time as a sequential run of the same design, for any
rank placement and backend.
"""

import pytest

from repro.core import (Component, Params, ParallelSimulation, Simulation)
from tests.conftest import PingPong, Sink, Source, Token


def build_chain(host, rank_of, n_stages, n_tokens, latency="5ns"):
    """A pipeline: source -> forwarders -> sink, spread across ranks."""

    class Forwarder(Component):
        def __init__(self, sim, name, params=None):
            super().__init__(sim, name, params)
            self.forwarded = self.stats.counter("forwarded")
            self.set_handler("in", self.on_event)

        def on_event(self, event):
            self.forwarded.add()
            self.send("out", event)

    def sim_for(i):
        if isinstance(host, ParallelSimulation):
            return host.rank_sim(rank_of(i))
        return host

    def connect(a, pa, b, pb, **kw):
        if isinstance(host, ParallelSimulation):
            host.connect(a, pa, b, pb, **kw)
        else:
            host.connect(a, pa, b, pb, **kw)

    src = Source(sim_for(0), "src", Params({"count": n_tokens, "period": "2ns"}))
    prev, prev_port = src, "out"
    for i in range(n_stages):
        f = Forwarder(sim_for(i + 1), f"fwd{i}")
        connect(prev, prev_port, f, "in", latency=latency)
        prev, prev_port = f, "out"
    sink = Sink(sim_for(n_stages + 1), "sink")
    connect(prev, prev_port, sink, "in", latency=latency)
    return sink


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("num_ranks", [1, 2, 4])
    def test_pingpong_matches_sequential(self, backend, num_ranks, make_pingpong):
        seq = Simulation(seed=3)
        make_pingpong(seq, n=25, latency="7ns")
        seq_result = seq.run()

        psim = ParallelSimulation(max(num_ranks, 2), seed=3, backend=backend)
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 25}))
        b = PingPong(psim.rank_sim(min(1, max(num_ranks, 2) - 1)), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="7ns")
        par_result = psim.run()
        psim.close()

        assert par_result.reason == "exit"
        assert par_result.end_time == seq_result.end_time
        assert psim.stat_values() == seq.stat_values()
        assert par_result.events_executed == seq_result.events_executed

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_chain_across_four_ranks(self, backend):
        n_stages, n_tokens = 6, 15
        seq_sink = build_chain(Simulation(seed=2), lambda i: 0, n_stages, n_tokens)
        seq_sim = seq_sink.sim
        seq_sim.run()

        psim = ParallelSimulation(4, seed=2, backend=backend)
        par_sink = build_chain(psim, lambda i: i % 4, n_stages, n_tokens)
        psim.run()
        psim.close()

        assert psim.stat_values() == seq_sim.stat_values()
        if backend != "processes":
            # Plain component attributes stay worker-side under the
            # processes backend; only statistics are synchronized back.
            assert par_sink.arrival_times == seq_sink.arrival_times

    def test_rank_placement_does_not_change_results(self):
        baselines = None
        for placement in (lambda i: 0, lambda i: i % 2, lambda i: (i // 2) % 4):
            psim = ParallelSimulation(4, seed=2)
            sink = build_chain(psim, placement, 5, 10)
            psim.run()
            stats = (sink.arrival_times, psim.stat_values())
            if baselines is None:
                baselines = stats
            else:
                assert stats == baselines


class TestProtocol:
    def test_lookahead_is_min_cross_latency(self):
        psim = ParallelSimulation(2)
        a = Component(psim.rank_sim(0), "a")
        b = Component(psim.rank_sim(1), "b")
        c = Component(psim.rank_sim(0), "c")
        d = Component(psim.rank_sim(1), "d")
        psim.connect(a, "p", b, "p", latency="100ns")
        psim.connect(c, "p", d, "p", latency="30ns")
        assert psim.lookahead == 30_000
        assert psim.cross_link_count == 2

    def test_local_links_do_not_limit_lookahead(self):
        psim = ParallelSimulation(2)
        a = Component(psim.rank_sim(0), "a")
        b = Component(psim.rank_sim(0), "b")
        c = Component(psim.rank_sim(1), "c")
        psim.connect(a, "p", b, "p", latency="1ps")  # same-rank: irrelevant
        psim.connect(a, "q", c, "q", latency="50ns")
        assert psim.lookahead == 50_000

    def test_epoch_count_scales_inversely_with_lookahead(self, make_pingpong):
        epochs = {}
        for latency in ("5ns", "50ns"):
            psim = ParallelSimulation(2, seed=1)
            a = PingPong(psim.rank_sim(0), "ping",
                         Params({"initiator": True, "n_round_trips": 16}))
            b = PingPong(psim.rank_sim(1), "pong", Params({}))
            psim.connect(a, "io", b, "io", latency=latency)
            result = psim.run()
            epochs[latency] = result.epochs
        # Bigger lookahead with proportionally longer traffic: epoch count
        # is driven by sync count; both runs need one epoch per one-way hop.
        assert epochs["5ns"] >= 1 and epochs["50ns"] >= 1

    def test_remote_event_count(self, make_pingpong):
        psim = ParallelSimulation(2, seed=1)
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 10}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        result = psim.run()
        assert result.remote_events == 20  # every delivery crossed ranks

    def test_max_time_limit(self):
        psim = ParallelSimulation(2, seed=1)
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 10**9}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        result = psim.run(max_time="203ns")
        assert result.reason == "max_time"
        assert result.end_time <= 203_000

    def test_no_cross_links_runs_exhaustively(self):
        psim = ParallelSimulation(2, seed=1)
        src0 = Source(psim.rank_sim(0), "src0", Params({"count": 3, "period": "1ns"}))
        sink0 = Sink(psim.rank_sim(0), "sink0")
        psim.connect(src0, "out", sink0, "in", latency="1ns")
        src1 = Source(psim.rank_sim(1), "src1", Params({"count": 5, "period": "1ns"}))
        sink1 = Sink(psim.rank_sim(1), "sink1")
        psim.connect(src1, "out", sink1, "in", latency="1ns")
        result = psim.run()
        assert result.reason == "exhausted"
        assert sink0.received.count == 3
        assert sink1.received.count == 5

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            ParallelSimulation(0)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ParallelSimulation(2, backend="gpu")

    def test_context_manager_closes(self):
        with ParallelSimulation(2, backend="threads") as psim:
            assert psim.num_ranks == 2
        assert psim._pool is None

    def test_per_rank_event_counts_sum(self):
        psim = ParallelSimulation(2, seed=1)
        a = PingPong(psim.rank_sim(0), "ping",
                     Params({"initiator": True, "n_round_trips": 8}))
        b = PingPong(psim.rank_sim(1), "pong", Params({}))
        psim.connect(a, "io", b, "io", latency="5ns")
        result = psim.run()
        assert sum(result.per_rank_events) == result.events_executed
        assert result.per_rank_events[0] == 8
        assert result.per_rank_events[1] == 8
