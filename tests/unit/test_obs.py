"""Tests for the observability layer: engine observer dispatch plus the
``repro.obs`` clients (telemetry, manifests, profiler, Chrome trace,
progress reporting) and the parallel engine's sync metrics."""

import io
import json

import pytest

from repro.config import ConfigGraph
from repro.core import Params, ParallelSimulation, Simulation
from repro.obs import (ChromeTraceExporter, HandlerProfiler,
                       MANIFEST_SCHEMA, METRICS_SCHEMA, ProgressReporter,
                       TelemetryRecorder, append_json_record,
                       attribute_event, build_manifest, graph_hash)
from tests.conftest import PingPong, Sink, Source


def _machine(sim, count=20):
    src = Source(sim, "src", Params({"count": count, "period": "2ns"}))
    sink = Sink(sim, "sink")
    sim.connect(src, "out", sink, "in", latency="1ns")
    return src, sink


def _parallel_pingpong(n=50, **kw):
    psim = ParallelSimulation(2, seed=3, **kw)
    ping = PingPong(psim.rank_sim(0), "ping",
                    Params({"initiator": True, "n_round_trips": n}))
    pong = PingPong(psim.rank_sim(1), "pong", Params({}))
    psim.connect(ping, "io", pong, "io", latency="5ns")
    return psim


class TestObserverDispatch:
    def test_uninstrumented_by_default(self):
        sim = Simulation()
        assert not sim.observers_installed
        assert sim._instr is None

    def test_trace_observer_sees_every_event(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        seen = []
        sim.add_trace_observer(lambda t, h, e: seen.append(t))
        assert sim.observers_installed
        result = sim.run()
        assert len(seen) == result.events_executed
        assert seen == sorted(seen)

    def test_multiple_observers_coexist_with_legacy_trace(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=3)
        a, b, legacy = [], [], []
        sim.set_trace(lambda t, h, e: legacy.append(t))
        sim.add_trace_observer(lambda t, h, e: a.append(t))
        sim.add_trace_observer(lambda t, h, e: b.append(t))
        result = sim.run()
        assert len(a) == len(b) == len(legacy) == result.events_executed

    def test_remove_observer_restores_bare_path(self):
        sim = Simulation()
        fn = lambda t, h, e: None
        sim.add_trace_observer(fn)
        assert sim.observers_installed
        sim.remove_trace_observer(fn)
        assert not sim.observers_installed
        assert sim._trace_fn is None

    def test_span_observer_measures_wall_time(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        spans = []
        sim.add_span_observer(
            lambda t, h, e, wall: spans.append((t, wall)))
        result = sim.run()
        assert len(spans) == result.events_executed
        assert all(wall >= 0.0 for _, wall in spans)

    def test_heartbeat_fires_every_n_events(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=10)
        beats = []
        sim.add_heartbeat(lambda s: beats.append(s.events_executed),
                          every_events=7)
        result = sim.run()
        assert beats == list(range(7, result.events_executed + 1, 7))

    def test_heartbeat_rejects_bad_interval(self):
        from repro.core.simulation import SimulationError
        with pytest.raises(SimulationError):
            Simulation().add_heartbeat(lambda s: None, every_events=0)

    def test_trace_and_span_run_same_events(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=4)
        order = []
        sim.add_trace_observer(lambda t, h, e: order.append("pre"))
        sim.add_span_observer(lambda t, h, e, w: order.append("post"))
        sim.run()
        assert order[::2] == ["pre"] * (len(order) // 2)
        assert order[1::2] == ["post"] * (len(order) // 2)

    def test_epoch_observer_parallel(self):
        psim = _parallel_pingpong(n=10)
        infos = []
        psim.add_epoch_observer(infos.append)
        result = psim.run()
        assert len(infos) == result.epochs
        assert infos[0].index == 0
        assert all(i.window_end >= i.window_start for i in infos)
        # events_total is the cumulative count: monotone, ends at the total.
        totals = [i.events_total for i in infos]
        assert totals == sorted(totals)
        assert totals[-1] == result.events_executed
        assert sum(sum(i.per_rank_events) for i in infos) == result.events_executed
        assert all(len(i.per_rank_events) == 2 for i in infos)


class TestTelemetry:
    def test_sequential_stream_and_manifest(self, tmp_path):
        sim = Simulation(seed=2)
        _machine(sim, count=30)
        metrics = tmp_path / "m.jsonl"
        rec = TelemetryRecorder(metrics, sample_every_events=10).attach(sim)
        result = sim.run()
        manifest = rec.finalize(result)
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines[0]["kind"] == "run_start"
        assert lines[0]["schema"] == METRICS_SCHEMA
        assert lines[-1]["kind"] == "run_end"
        samples = [l for l in lines if l["kind"] == "sample"]
        assert samples, "expected at least one sample record"
        assert all(s["events"] > 0 for s in samples)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["run"]["events_executed"] == result.events_executed
        side = json.loads((tmp_path / "m.jsonl.manifest.json").read_text())
        assert side["run"] == manifest["run"]
        # finalize() detaches: engine returns to the bare path.
        assert not sim.observers_installed

    def test_parallel_stream_has_epoch_records(self, tmp_path):
        psim = _parallel_pingpong(n=20)
        metrics = tmp_path / "p.jsonl"
        with TelemetryRecorder(metrics) as rec:
            rec.attach(psim)
            result = psim.run()
            manifest = rec.finalize(result)
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        epochs = [l for l in lines if l["kind"] == "epoch"]
        assert len(epochs) == result.epochs
        assert lines[0]["ranks"] == 2
        assert manifest["engine"]["mode"] == "parallel"
        assert manifest["run"]["epochs"] == result.epochs
        assert "sync" in manifest and manifest["sync"]

    def test_manifest_embeds_graph(self, tmp_path):
        g = ConfigGraph("m")
        g.component("src", "processor.TrafficGenerator", {"requests": 10})
        sim = Simulation(seed=1)
        _machine(sim, count=5)
        result = sim.run()
        manifest = build_manifest(sim, result, graph=g,
                                  invocation=["run", "m.json"])
        assert manifest["graph"]["name"] == "m"
        assert manifest["graph"]["hash"] == graph_hash(g)
        # Counts are taken from the instantiated simulation, not the graph.
        assert manifest["graph"]["components"] == len(sim.components)
        assert manifest["invocation"] == ["run", "m.json"]


class TestManifestHelpers:
    def test_graph_hash_deterministic_and_sensitive(self):
        def make(requests):
            g = ConfigGraph("m")
            g.component("src", "processor.TrafficGenerator",
                        {"requests": requests})
            return g

        assert graph_hash(make(10)) == graph_hash(make(10))
        assert graph_hash(make(10)) != graph_hash(make(11))
        assert len(graph_hash(make(10))) == 16

    def test_append_json_record(self, tmp_path):
        path = tmp_path / "records.json"
        append_json_record(path, {"a": 1})
        append_json_record(path, {"a": 2})
        data = json.loads(path.read_text())
        assert data == [{"a": 1}, {"a": 2}]

    def test_append_json_record_recovers_corrupt_file(self, tmp_path):
        path = tmp_path / "records.json"
        path.write_text("{not json")
        append_json_record(path, {"a": 1})
        assert json.loads(path.read_text()) == [{"a": 1}]
        assert path.with_suffix(".json.corrupt").exists()


class TestProfiler:
    def test_attributes_time_to_components(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=25)
        prof = HandlerProfiler(sim)
        sim.run()
        prof.detach()
        names = {row.component for row in prof.rows()}
        assert {"ping", "pong"} <= names
        assert prof.hottest_component() in ("ping", "pong")
        assert prof.total_seconds() > 0.0
        assert sum(r.count for r in prof.rows()) == sim.events_executed

    def test_report_and_as_dict(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        with HandlerProfiler(sim) as prof:
            sim.run()
        text = prof.report(top=5)
        assert "component" in text and "ping" in text
        d = prof.as_dict()
        assert d["rows"] and d["total_seconds"] > 0.0

    def test_sampling_scales_counts(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=25)
        with HandlerProfiler(sim, sample_every=4) as prof:
            sim.run()
        # Every event is *counted* even when only every 4th is timed.
        assert sum(r.count for r in prof.rows()) == sim.events_executed

    def test_parallel_rows_carry_ranks(self):
        psim = _parallel_pingpong(n=20)
        with HandlerProfiler(psim) as prof:
            psim.run()
        ranks = {row.rank for row in prof.rows()}
        assert ranks == {0, 1}

    def test_attribute_event_port_handler(self):
        sim = Simulation()
        src, sink = _machine(sim, count=1)
        component, label = attribute_event(sink.port("in").deliver, None)
        assert component == "sink"
        assert "in" in label


class TestChromeTrace:
    def test_sequential_trace_shape(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=10)
        exporter = ChromeTraceExporter()
        exporter.attach(sim)
        sim.run()
        exporter.detach()
        trace = exporter.trace_dict()
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(spans) == sim.events_executed
        assert meta, "expected process/thread metadata records"
        assert all(e["dur"] >= 0 and "sim_ps" in e["args"] for e in spans)
        lanes = {(e["pid"], e["tid"]) for e in spans}
        assert len(lanes) >= 2  # ping and pong lanes

    def test_parallel_trace_has_epoch_lane(self, tmp_path):
        psim = _parallel_pingpong(n=10)
        path = tmp_path / "trace.json"
        with ChromeTraceExporter(path) as exporter:
            exporter.attach(psim)
            result = psim.run()
        trace = json.loads(path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert any(n.startswith("epoch") for n in names)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1}

    def test_max_events_caps_collection(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=50)
        exporter = ChromeTraceExporter(max_events=10)
        exporter.attach(sim)
        sim.run()
        exporter.detach()
        spans = [e for e in exporter.trace_dict()["traceEvents"]
                 if e["ph"] == "X"]
        assert len(spans) == 10
        assert exporter.dropped_events == sim.events_executed - 10


class TestProgress:
    def test_emits_lines(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=40)
        out = io.StringIO()
        rep = ProgressReporter(stream=out, interval_s=0.0, every_events=10)
        rep.attach(sim)
        sim.run()
        rep.detach()
        lines = out.getvalue().strip().splitlines()
        assert rep.lines_emitted == len(lines) > 0
        assert all(l.startswith("[progress]") for l in lines)
        # Every in-flight line carries a rate; detach appends a summary.
        assert all("ev/s" in l for l in lines[:-1])
        assert lines[-1].startswith("[progress] done:")

    def test_detach_prints_final_summary(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=40)
        out = io.StringIO()
        rep = ProgressReporter(stream=out, interval_s=1e9)
        rep.attach(sim)
        result = sim.run()
        rep.detach()
        lines = out.getvalue().strip().splitlines()
        # Long interval: no periodic lines, just the detach summary.
        assert len(lines) == 1
        assert lines[0].startswith("[progress] done: ")
        assert f"{result.events_executed} events" in lines[0]
        assert "mean" in lines[0]

    def test_detach_without_attach_is_silent(self):
        out = io.StringIO()
        rep = ProgressReporter(stream=out)
        rep.detach()
        assert out.getvalue() == ""

    def test_eta_with_max_time(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=1000)
        out = io.StringIO()
        rep = ProgressReporter(stream=out, interval_s=0.0, every_events=100,
                               max_time="1ms")
        rep.attach(sim)
        sim.run(max_time="1ms")
        rep.detach()
        assert "ETA" in out.getvalue()

    def test_eta_placeholder_when_window_advances_nothing(self):
        """Satellite: a reporting window that executed zero events (and
        so advanced no sim time) must print an ETA placeholder, not
        divide by the zero sim-rate."""
        out = io.StringIO()
        rep = ProgressReporter(stream=out, interval_s=0.0, max_time="1ms")
        rep._t0 = 0.0  # the window is open; nothing has run in it
        rep._maybe_emit(0, 0, extra="")
        line = out.getvalue().strip()
        assert line.startswith("[progress]")
        assert line.endswith("| ETA --")

    def test_parallel_progress_reports_epochs(self):
        psim = _parallel_pingpong(n=30)
        out = io.StringIO()
        rep = ProgressReporter(stream=out, interval_s=0.0)
        rep.attach(psim)
        psim.run()
        rep.detach()
        assert "epoch" in out.getvalue()


class TestRunResultSerialization:
    def test_sequential_as_dict(self, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        d = sim.run().as_dict()
        assert d["reason"] == "exit"
        assert d["events_executed"] == 10  # 5 round trips, 2 deliveries each
        assert d["wall_seconds"] >= 0.0
        assert "events_per_second" in d
        json.dumps(d)  # must be JSON-clean

    def test_parallel_as_dict(self):
        psim = _parallel_pingpong(n=10)
        result = psim.run()
        d = result.as_dict()
        assert d["epochs"] == result.epochs
        assert d["lookahead_ps"] == 5000
        assert d["barrier_wait_seconds"] >= 0.0
        assert 0.0 <= d["lookahead_utilization"] <= 1.0
        assert len(d["per_rank_barrier_wait"]) == 2
        json.dumps(d)


class TestCliWiring:
    def _config(self, tmp_path):
        from repro.config import save
        g = ConfigGraph("m")
        g.component("src", "testlib.Source", {"count": 20, "period": "2ns"})
        g.component("sink", "testlib.Sink")
        g.link("src", "out", "sink", "in", latency="1ns")
        path = tmp_path / "m.json"
        save(g, path)
        return path

    def test_run_with_observability_flags(self, tmp_path, capsys):
        from repro.__main__ import main
        config = self._config(tmp_path)
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "trace.json"
        assert main(["run", str(config), "--metrics", str(metrics),
                     "--profile", "--trace-chrome", str(trace),
                     "--progress"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out          # throughput printed by default
        assert "hottest component" in out  # --profile table
        lines = [json.loads(l) for l in metrics.read_text().splitlines()]
        assert lines[-1]["kind"] == "run_end"
        manifest = json.loads(
            (tmp_path / "m.jsonl.manifest.json").read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["engine"]["mode"] == "sequential"
        assert json.loads(trace.read_text())["traceEvents"]

    def test_parallel_run_with_observability_flags(self, tmp_path, capsys):
        from repro.__main__ import main
        config = self._config(tmp_path)
        metrics = tmp_path / "p.jsonl"
        assert main(["run", str(config), "--ranks", "2",
                     "--metrics", str(metrics), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out and "barrier wait" in out
        manifest = json.loads(
            (tmp_path / "p.jsonl.manifest.json").read_text())
        assert manifest["engine"]["mode"] == "parallel"
        assert manifest["engine"]["ranks"] == 2
        assert manifest["sync"]


class TestParallelSyncMetrics:
    def test_sync_stats_merged_across_ranks(self):
        psim = _parallel_pingpong(n=25)
        result = psim.run()
        sync = psim.sync_stat_values()
        assert sync["sync.epochs"] == result.epochs * 2  # one count per rank
        assert sync["sync.remote_sends"] == result.remote_events
        merged = psim.sync_stats()
        assert merged["sync.epoch_events"].count == result.epochs * 2

    def test_engine_stats_excluded_by_default(self):
        psim = _parallel_pingpong(n=10)
        psim.run()
        default = psim.stats()
        assert not any(k.startswith("_engine.") for k in default)
        with_engine = psim.stats(include_engine=True)
        assert any(k.startswith("_engine.sync.") for k in with_engine)

    def test_equivalence_holds_with_sync_metrics_present(self, make_pingpong):
        # The per-rank sync.* collectors live outside the component
        # harvest, so a parallel run still reports component statistics
        # identical to the sequential engine's.
        seq = Simulation(seed=3)
        make_pingpong(seq, n=25, latency="5ns")
        seq.run()

        psim = _parallel_pingpong(n=25)
        psim.run()
        assert psim.sync_stat_values()["sync.epochs"] > 0  # metrics active
        assert psim.stat_values() == seq.stat_values()

    def test_sync_stats_merge_is_repeatable(self):
        # Merging must not mutate the per-rank collectors (regression:
        # folding into rank 0's own statistic doubled it on re-harvest).
        psim = _parallel_pingpong(n=10)
        psim.run()
        first = psim.sync_stat_values()
        second = psim.sync_stat_values()
        assert first == second
