"""Tests for the electro-thermal and reliability-coupling models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.thermal import (OperatingPoint, ThermalModel, ThermalParams,
                                 ThermalRunaway)


class TestParams:
    def test_leakage_exponential(self):
        p = ThermalParams(leakage_ref_w=2.0, reference_c=60.0,
                          leakage_beta=0.02)
        assert p.leakage_w(60.0) == pytest.approx(2.0)
        assert p.leakage_w(95.0) == pytest.approx(2.0 * math.exp(0.7))

    def test_time_constant(self):
        p = ThermalParams(r_thermal_c_per_w=0.8, c_thermal_j_per_c=25.0)
        assert p.time_constant_s == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(r_thermal_c_per_w=0)
        with pytest.raises(ValueError):
            ThermalParams(leakage_beta=-1)


class TestSteadyState:
    def test_zero_power_sits_at_ambient_plus_leakage(self):
        model = ThermalModel(ThermalParams(leakage_ref_w=0.0))
        point = model.steady_state(0.0)
        assert point.temperature_c == pytest.approx(40.0)
        assert point.total_power_w == 0.0

    def test_consistency_of_fixed_point(self):
        model = ThermalModel()
        point = model.steady_state(20.0)
        p = model.params
        expected_t = p.ambient_c + p.r_thermal_c_per_w * point.total_power_w
        assert point.temperature_c == pytest.approx(expected_t, abs=1e-3)
        assert point.leakage_power_w == pytest.approx(
            p.leakage_w(point.temperature_c), rel=1e-6)

    def test_leakage_amplifies_with_power(self):
        model = ThermalModel()
        low = model.steady_state(10.0)
        high = model.steady_state(50.0)
        assert high.temperature_c > low.temperature_c
        assert high.leakage_power_w > low.leakage_power_w
        # Exponential coupling: the leakage ratio exceeds the linearised
        # estimate 1 + beta*dT (1.65 here; exp gives ~1.92).
        d_temp = high.temperature_c - low.temperature_c
        linearised = 1.0 + ThermalModel().params.leakage_beta * d_temp
        assert (high.leakage_power_w / low.leakage_power_w) > \
            linearised * 1.05

    def test_runaway_detected(self):
        # Hugely resistive package + sensitive leakage: no fixed point.
        params = ThermalParams(r_thermal_c_per_w=5.0, leakage_beta=0.08,
                               leakage_ref_w=5.0)
        model = ThermalModel(params)
        with pytest.raises(ThermalRunaway):
            model.steady_state(60.0)

    def test_junction_limit_enforced(self):
        params = ThermalParams(t_max_c=80.0)
        model = ThermalModel(params)
        with pytest.raises(ThermalRunaway):
            model.steady_state(60.0)  # 40 + 0.8*60 = 88C > 80C

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel().steady_state(-1.0)

    @given(st.floats(0.0, 40.0))
    @settings(max_examples=40)
    def test_monotone_in_power(self, power):
        model = ThermalModel()
        a = model.steady_state(power)
        b = model.steady_state(power + 5.0)
        assert b.temperature_c > a.temperature_c


class TestTransient:
    def test_approaches_steady_state(self):
        model = ThermalModel()
        steady = model.steady_state(30.0)
        trace = model.transient(30.0, duration_s=200.0, dt_s=0.05)
        final = trace[-1][1]
        assert final == pytest.approx(steady.temperature_c, abs=0.5)

    def test_monotone_warmup_from_ambient(self):
        model = ThermalModel()
        trace = model.transient(30.0, duration_s=50.0)
        temps = [t for _, t in trace]
        assert all(b >= a - 1e-9 for a, b in zip(temps, temps[1:]))

    def test_cooldown_from_hot(self):
        model = ThermalModel()
        trace = model.transient(0.0, duration_s=100.0, initial_c=90.0)
        assert trace[-1][1] < 45.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel().transient(10.0, duration_s=0)


class TestReliabilityCoupling:
    def test_arrhenius_reference_is_unity(self):
        assert ThermalModel.arrhenius_acceleration(60.0, 60.0) == \
            pytest.approx(1.0)

    def test_hotter_fails_faster(self):
        af_85 = ThermalModel.arrhenius_acceleration(85.0)
        af_105 = ThermalModel.arrhenius_acceleration(105.0)
        assert 1.0 < af_85 < af_105
        # The folk rule: ~2x per 10-15C at Ea ~ 0.7eV.
        assert 3.0 < af_85 < 10.0

    def test_derated_mtbf(self):
        model = ThermalModel()
        nominal = 100_000.0
        derated = model.derated_mtbf_s(nominal, 85.0)
        assert derated < nominal / 3

    def test_couples_into_checkpoint_model(self):
        """The full §5 chain: power -> temperature -> MTBF -> optimal
        checkpoint interval shrinks and expected runtime grows."""
        from repro.resilience import daly_interval_s, expected_runtime_s

        model = ThermalModel()
        cool = model.steady_state(15.0)
        hot = model.steady_state(60.0)
        nominal_node_mtbf = 500_000.0
        mtbf_cool = model.derated_mtbf_s(nominal_node_mtbf,
                                         cool.temperature_c)
        mtbf_hot = model.derated_mtbf_s(nominal_node_mtbf,
                                        hot.temperature_c)
        assert mtbf_hot < mtbf_cool
        delta, restart, work = 10.0, 20.0, 10_000.0
        t_cool = expected_runtime_s(work, daly_interval_s(delta, mtbf_cool),
                                    delta, restart, mtbf_cool)
        t_hot = expected_runtime_s(work, daly_interval_s(delta, mtbf_hot),
                                   delta, restart, mtbf_hot)
        assert t_hot > t_cool

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel.arrhenius_acceleration(-300.0)
        with pytest.raises(ValueError):
            ThermalModel().derated_mtbf_s(0, 80.0)
