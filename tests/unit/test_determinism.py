"""Determinism regression tests for the PR 4 hot-path optimisations.

The shared-clock arbiter, the event-record pool and the batched
cross-rank exchange all rewrite hot paths whose *correctness contract*
is deterministic execution order: identical builds must pop identical
``(time, priority, seq)`` sequences and land on identical statistics,
on every execution backend.  These tests pin that contract with a mixed
clocked+link workload:

* run-to-run: the same partitioned graph, run twice per backend, yields
  bit-identical per-rank pop traces (serial/threads, where the rank
  engines are observable in-process) and bit-identical final stats
  (all three backends, including processes where the trace stays in the
  forked workers);
* cross-backend: serial and threads produce the *same* trace, and every
  backend produces the same stats;
* arbiter ablation: arbiter-on and arbiter-off runs of one sequential
  simulation agree on everything observable — stats, end time, executed
  events, and the ordered non-tick event sequence — even though their
  internal tick bookkeeping records differ by design;
* checkpoint/resume (PR 5): a run segmented by engine snapshots pops
  the *same* ``(time, priority, seq)`` sequence as an uninterrupted
  one, and a run resumed from a snapshot pops exactly the suffix the
  uninterrupted run would have popped after the snapshot time — the
  repro.ckpt exactness contract, sequential and parallel.
"""

from __future__ import annotations

import pytest

from repro.config import ConfigGraph, build, build_parallel
from repro.core.backends import BACKENDS

ALL_BACKENDS = sorted(BACKENDS)


class RecordingQueue:
    """Transparent event-queue proxy that logs every pop.

    The kernel hoists ``sim._queue``/``.pop`` once per run, so installing
    the proxy before ``run()`` captures the full execution order.  The
    ``(time, priority, seq)`` triple is copied out immediately — pooled
    records are recycled after dispatch, the tuples are not.
    """

    def __init__(self, inner, trace):
        self._inner = inner
        self.trace = trace

    def pop(self):
        record = self._inner.pop()
        self.trace.append((record.time, record.priority, record.seq,
                           type(record.event).__name__))
        return record

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __len__(self):
        return len(self._inner)

    def __bool__(self):
        return bool(self._inner)


def mixed_graph() -> ConfigGraph:
    """Clocked + link-event workload with cross-rank traffic when split."""
    graph = ConfigGraph("determinism")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": 40})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="3ns")
    graph.component("src", "testlib.Source", {"count": 25, "period": "2ns"})
    graph.component("sink", "testlib.Sink", {})
    graph.link("src", "out", "sink", "in", latency="4ns")
    # Same-frequency clocks land in one shared arbiter; the 500 MHz one
    # gets its own, so both arbiter code paths run.
    for i in range(4):
        graph.component(f"clk{i}", "testlib.Clocked",
                        {"clock": "1GHz", "n_ticks": 120})
    graph.component("slow", "testlib.Clocked",
                    {"clock": "500MHz", "n_ticks": 60})
    return graph


def run_parallel_traced(backend: str):
    """One 2-rank run; returns (per-rank traces, stats, result tuple)."""
    psim = build_parallel(mixed_graph(), 2, strategy="round_robin",
                          seed=7, backend=backend)
    traces = []
    for rank in range(psim.num_ranks):
        sim = psim.rank_sim(rank)
        sim._queue = RecordingQueue(sim._queue, [])
        traces.append(sim._queue.trace)
    result = psim.run()
    summary = (result.reason, result.end_time, result.events_executed,
               result.epochs, result.remote_events)
    return traces, psim.stat_values(), summary


class TestThreeBackendDeterminism:
    def test_run_to_run_traces_and_stats(self):
        """PR 4 acceptance: two runs per backend, identical
        (time, priority, seq) traces and identical final stats."""
        runs = {}
        for backend in ALL_BACKENDS:
            first = run_parallel_traced(backend)
            second = run_parallel_traced(backend)
            if backend == "processes":
                # Rank engines execute in forked workers: the in-process
                # trace stays empty there, so the run-to-run contract is
                # pinned through stats + the result summary instead.
                assert first[1] == second[1], backend
                assert first[2] == second[2], backend
            else:
                assert first == second, backend
            runs[backend] = first
        # Cross-backend: identical stats and result summary everywhere,
        # identical per-rank traces wherever they are observable.
        for backend in ALL_BACKENDS:
            assert runs[backend][1] == runs["serial"][1], backend
            assert runs[backend][2] == runs["serial"][2], backend
        assert runs["threads"][0] == runs["serial"][0]

    def test_trace_is_nonempty_and_ordered(self):
        """Sanity on the harness itself: the proxy actually records, and
        pops come out in nondecreasing (time, priority, seq) order per
        rank."""
        traces, stats, summary = run_parallel_traced("serial")
        assert summary[0] == "exit"
        for trace in traces:
            assert len(trace) > 100
            keys = [entry[:3] for entry in trace]
            assert keys == sorted(keys)
        assert any(name == "_ArbiterTickEvent"
                   for trace in traces for (_, _, _, name) in trace)


class TestArbiterAblationEquivalence:
    def test_sequential_observables_identical(self, monkeypatch):
        """Arbiter on vs off: same stats, end time, executed-event count
        and ordered non-tick event stream.  Raw (seq) values differ by
        design — the arbiter collapses N tick records into one — so the
        comparison filters the internal tick bookkeeping."""

        def run(arbiter_on: bool):
            monkeypatch.setenv("REPRO_CLOCK_ARBITER",
                               "1" if arbiter_on else "0")
            sim = build(mixed_graph(), seed=7)
            sim._queue = RecordingQueue(sim._queue, [])
            result = sim.run()
            ticks = ("_ClockTickEvent", "_ArbiterTickEvent")
            visible = [(t, prio, name)
                       for (t, prio, _seq, name) in sim._queue.trace
                       if name not in ticks]
            return (sim.stat_values(), result.reason, result.end_time,
                    result.events_executed, visible)

        on = run(True)
        off = run(False)
        assert on == off

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_parallel_stats_match_arbiter_off(self, backend, monkeypatch):
        """Every backend lands on the pre-arbiter stats."""
        monkeypatch.setenv("REPRO_CLOCK_ARBITER", "0")
        baseline = run_parallel_traced(backend)[1]
        monkeypatch.setenv("REPRO_CLOCK_ARBITER", "1")
        assert run_parallel_traced(backend)[1] == baseline


class TestTransportSyncDeterminism:
    """PR 9 acceptance: the shm exchange transport and the adaptive
    lookahead are pure performance knobs.  Every (backend, transport,
    sync) combination lands on the serial conservative reference's
    stats, end time, event count and remote-event count; in-process
    backends additionally pop bit-identical (time, priority, seq)
    traces.  Epoch counts are excluded deliberately — widening the
    window (fewer, fatter epochs) is the adaptive strategy's entire
    point."""

    def _run(self, backend, transport="pipe", sync="conservative"):
        psim = build_parallel(mixed_graph(), 2, strategy="round_robin",
                              seed=7, backend=backend,
                              transport=transport, sync=sync)
        traces = []
        for rank in range(psim.num_ranks):
            sim = psim.rank_sim(rank)
            sim._queue = RecordingQueue(sim._queue, [])
            traces.append(sim._queue.trace)
        result = psim.run()
        stats = psim.stat_values()
        psim.close()
        invariant = (result.reason, result.end_time,
                     result.events_executed, result.remote_events)
        return traces, stats, invariant, result

    def test_all_combos_match_serial_conservative_reference(self):
        ref_traces, ref_stats, ref_inv, _ = self._run("serial")
        combos = [(backend, "pipe", sync) for backend in ALL_BACKENDS
                  for sync in ("conservative", "adaptive")]
        combos += [("processes", "shm", "conservative"),
                   ("processes", "shm", "adaptive")]
        for backend, transport, sync in combos:
            traces, stats, inv, _ = self._run(backend, transport, sync)
            assert stats == ref_stats, (backend, transport, sync)
            assert inv == ref_inv, (backend, transport, sync)
            if backend != "processes":
                # Forked workers keep their traces; in-process engines
                # must pop the exact reference sequence.
                assert traces == ref_traces, (backend, transport, sync)

    def test_adaptive_never_adds_epochs(self):
        conservative = self._run("serial", sync="conservative")[3]
        adaptive = self._run("serial", sync="adaptive")[3]
        assert adaptive.epochs <= conservative.epochs
        assert adaptive.events_executed == conservative.events_executed


class TestCheckpointResumeBitIdentity:
    """PR 5 acceptance: checkpoint/resume is bit-identical, not merely
    stats-equivalent.  The queue seq counter and the bare/instrumented
    dispatch modes are part of the snapshot, so the resumed engine pops
    the exact (time, priority, seq) triples the uninterrupted engine
    would have popped."""

    def _sequential_reference(self):
        sim = build(mixed_graph(), seed=7)
        sim._queue = RecordingQueue(sim._queue, [])
        result = sim.run()
        return sim._queue.trace, sim.stat_values(), result

    def test_sequential_checkpointed_trace_identical(self, tmp_path):
        """Segmenting a run into checkpoint intervals is invisible: the
        full pop trace matches an unsegmented run's exactly."""
        trace, stats, cold = self._sequential_reference()
        sim = build(mixed_graph(), seed=7)
        sim._queue = RecordingQueue(sim._queue, [])
        sim.run(checkpoint_every=cold.end_time // 4,
                checkpoint_dir=str(tmp_path))
        assert sim._queue.trace == trace
        assert sim.stat_values() == stats

    def test_sequential_resume_trace_is_exact_suffix(self, tmp_path):
        from repro.ckpt import restore, snapshot_info

        trace, stats, cold = self._sequential_reference()
        sim = build(mixed_graph(), seed=7)
        sim.run(checkpoint_every=cold.end_time // 4,
                checkpoint_dir=str(tmp_path))
        mid = sim.checkpoints_written[1]
        cut = snapshot_info(mid)["sim_time_ps"]
        resumed = restore(mid)
        resumed._queue = RecordingQueue(resumed._queue, [])
        resumed.run()
        suffix = [entry for entry in trace if entry[0] > cut]
        assert resumed._queue.trace == suffix
        assert suffix  # the cut really was mid-run
        assert resumed.stat_values() == stats

    def test_parallel_resume_traces_are_exact_suffixes(self, tmp_path):
        """2-rank exact restore: every rank's resumed pop trace is the
        uninterrupted run's per-rank suffix after the snapshot time
        (pending cross-rank sends included, with the same seqs)."""
        from repro.ckpt import restore, snapshot_info

        traces, stats, _summary = run_parallel_traced("serial")
        psim = build_parallel(mixed_graph(), 2, strategy="round_robin",
                              seed=7, backend="serial")
        psim.run(checkpoint_every="60ns", checkpoint_dir=str(tmp_path))
        mid = psim.checkpoints_written[0]
        cut = snapshot_info(mid)["sim_time_ps"]
        psim.close()
        resumed = restore(mid)
        resumed_traces = []
        for rank in range(resumed.num_ranks):
            sim = resumed.rank_sim(rank)
            sim._queue = RecordingQueue(sim._queue, [])
            resumed_traces.append(sim._queue.trace)
        resumed.run()
        resumed.close()
        assert resumed.stat_values() == stats
        for rank in range(2):
            suffix = [entry for entry in traces[rank] if entry[0] > cut]
            assert resumed_traces[rank] == suffix, rank
            assert suffix, rank
