"""Tests for repro.ckpt: engine-level checkpoint/restore.

The subsystem contract under test:

* sequential and parallel checkpointed runs are observationally
  identical to uninterrupted runs (full bit-identity is pinned in
  test_determinism.py; here we pin stats and end state);
* snapshots restore across execution backends and across rank counts
  (exact restores resume the same layout, repartition restores rebuild
  a different one with stats-equivalent results);
* committed snapshots are validated on the way in — a missing
  manifest, a corrupt shard or a mismatched config-graph hash is a
  :class:`CheckpointError`, never silent corruption;
* warm-started sweeps reproduce cold-sweep results exactly;
* the ``python -m repro ckpt`` CLI round-trips info/resume.
"""

from __future__ import annotations

import json

import pytest

from repro.ckpt import (CheckpointError, replay, restore, snapshot,
                        snapshot_info, snapshot_parallel)
from repro.config import ConfigGraph, build, build_parallel
from repro.core.backends import BACKENDS

ALL_BACKENDS = sorted(BACKENDS)


def small_graph() -> ConfigGraph:
    """Clocked + link-event workload, cross-rank traffic when split."""
    graph = ConfigGraph("ckpt-mixed")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": 30})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="3ns")
    graph.component("src", "testlib.Source", {"count": 20, "period": "2ns"})
    graph.component("sink", "testlib.Sink", {})
    graph.link("src", "out", "sink", "in", latency="4ns")
    for i in range(2):
        graph.component(f"clk{i}", "testlib.Clocked",
                        {"clock": "1GHz", "n_ticks": 90})
    graph.component("slow", "testlib.Clocked",
                    {"clock": "500MHz", "n_ticks": 45})
    return graph


def cold_reference():
    sim = build(small_graph(), seed=7)
    result = sim.run()
    return sim.stat_values(), result


class TestSequentialCheckpoint:
    def test_checkpointed_run_matches_cold(self, tmp_path):
        stats, cold = cold_reference()
        sim = build(small_graph(), seed=7)
        result = sim.run(checkpoint_every=cold.end_time // 4,
                         checkpoint_dir=str(tmp_path))
        assert sim.stat_values() == stats
        assert (result.reason, result.end_time, result.events_executed) == \
            (cold.reason, cold.end_time, cold.events_executed)
        assert len(sim.checkpoints_written) >= 3

    def test_restore_resumes_to_identical_stats(self, tmp_path):
        stats, cold = cold_reference()
        sim = build(small_graph(), seed=7)
        sim.run(checkpoint_every=cold.end_time // 4,
                checkpoint_dir=str(tmp_path))
        mid = sim.checkpoints_written[1]
        resumed = restore(mid)
        assert resumed.checkpoint_lineage["mode"] == "exact"
        assert resumed.now == snapshot_info(mid)["sim_time_ps"]
        result = resumed.run()
        assert resumed.stat_values() == stats
        assert result.end_time == cold.end_time

    def test_explicit_snapshot_and_info(self, tmp_path):
        sim = build(small_graph(), seed=7)
        sim.run(max_time="50ns", finalize=False)
        path = snapshot(sim, tmp_path / "snap")
        info = snapshot_info(path)
        assert info["schema"] == "repro-ckpt/1"
        assert info["mode"] == "sequential"
        assert info["num_ranks"] == 1
        assert info["sim_time_ps"] == sim.now
        assert info["intact"] and info["files"][0]["status"] == "ok"

    def test_replay_produces_event_trace(self, tmp_path):
        stats, _cold = cold_reference()
        sim = build(small_graph(), seed=7)
        sim.run(max_time="80ns", finalize=False)
        path = snapshot(sim, tmp_path / "snap")
        replayed, result, trace = replay(path)
        assert result.reason == "exit"
        assert replayed.stat_values() == stats
        assert trace and all(len(entry) == 3 for entry in trace)
        times = [t for (t, _h, _e) in trace]
        assert times == sorted(times)


class TestParallelCheckpoint:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_snapshot_restores_across_backends(self, backend, tmp_path):
        """A snapshot taken on any backend restores under serial (and
        the checkpointed run itself matches the cold reference)."""
        stats, cold = cold_reference()
        psim = build_parallel(small_graph(), 2, strategy="round_robin",
                              seed=7, backend=backend)
        try:
            result = psim.run(checkpoint_every=cold.end_time // 3,
                              checkpoint_dir=str(tmp_path / backend))
            assert psim.stat_values() == stats
            assert result.end_time == cold.end_time
            written = list(psim.checkpoints_written)
            assert written
        finally:
            psim.close()
        resumed = restore(written[0], backend="serial")
        try:
            resumed.run()
            assert resumed.stat_values() == stats
        finally:
            resumed.close()

    def test_restore_across_rank_counts(self, tmp_path):
        """4-rank snapshot -> 2-rank and sequential repartition restores
        all land on the cold-reference statistics."""
        stats, _cold = cold_reference()
        psim = build_parallel(small_graph(), 4, strategy="round_robin",
                              seed=7)
        try:
            psim.run(max_time="60ns")
            path = snapshot_parallel(psim, tmp_path / "snap4")
        finally:
            psim.close()
        for ranks in (2, 1):
            resumed = restore(path, ranks=ranks)
            try:
                assert resumed.checkpoint_lineage["mode"] == "repartition"
                resumed.run()
                assert resumed.stat_values() == stats, ranks
            finally:
                close = getattr(resumed, "close", None)
                if close:
                    close()

    def test_exact_parallel_restore_is_exact(self, tmp_path):
        stats, cold = cold_reference()
        psim = build_parallel(small_graph(), 2, strategy="round_robin",
                              seed=7)
        try:
            psim.run(max_time="60ns")
            path = snapshot_parallel(psim, tmp_path / "snap2")
        finally:
            psim.close()
        resumed = restore(path)
        try:
            assert resumed.checkpoint_lineage["mode"] == "exact"
            result = resumed.run()
            assert resumed.stat_values() == stats
            assert result.end_time == cold.end_time
        finally:
            resumed.close()


class TestSnapshotValidation:
    def _snapshot(self, tmp_path):
        sim = build(small_graph(), seed=7)
        sim.run(max_time="50ns", finalize=False)
        return snapshot(sim, tmp_path / "snap")

    def test_uncommitted_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(CheckpointError, match="not a committed"):
            restore(tmp_path / "empty")

    def test_corrupted_shard_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        shard = path / "shard-0000.pkl"
        blob = bytearray(shard.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        shard.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupt"):
            restore(path)
        info = snapshot_info(path)
        assert not info["intact"]
        assert info["files"][0]["status"] == "corrupt"

    def test_missing_shard_detected(self, tmp_path):
        path = self._snapshot(tmp_path)
        (path / "shard-0000.pkl").unlink()
        assert snapshot_info(path)["files"][0]["status"] == "missing"
        with pytest.raises(CheckpointError):
            restore(path)

    def test_wrong_graph_hash_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        manifest = json.loads((path / "MANIFEST.json").read_text())
        manifest["graph_hash"] = "0" * 16
        (path / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="hash"):
            restore(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        manifest = json.loads((path / "MANIFEST.json").read_text())
        manifest["schema"] = "repro-ckpt/999"
        (path / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="schema"):
            restore(path)


class TestWarmStartSweep:
    def test_warm_sweep_matches_cold(self, tmp_path):
        from repro.dse import sweep

        kwargs = dict(instructions=60_000, seed=3)
        cold = sweep(["hpccg"], [2], ["DDR3-1066"], **kwargs)
        warm1 = sweep(["hpccg"], [2], ["DDR3-1066"], warm_start="20us",
                      warm_dir=tmp_path, **kwargs)
        # The first warm sweep simulated the prefix and snapshotted it.
        snaps = list(tmp_path.glob("warm-*/MANIFEST.json"))
        assert len(snaps) == 1
        warm2 = sweep(["hpccg"], [2], ["DDR3-1066"], warm_start="20us",
                      warm_dir=tmp_path, **kwargs)
        assert cold.points == warm1.points == warm2.points

    def test_warm_start_requires_dir(self):
        from repro.dse import run_design_point, sweep

        with pytest.raises(ValueError, match="warm_dir"):
            run_design_point("hpccg", instructions=10_000, warm_start="1us")
        with pytest.raises(ValueError, match="warm_dir"):
            sweep(["hpccg"], [2], ["DDR3-1066"], instructions=10_000,
                  warm_start="1us")


class TestCkptCli:
    def test_info_and_resume_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.config import save

        cfg = tmp_path / "machine.json"
        save(small_graph(), cfg)
        ckpt_dir = tmp_path / "ckpts"
        assert main(["run", str(cfg), "--seed", "7",
                     "--checkpoint-every", "50ns",
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        snaps = sorted(ckpt_dir.glob("ckpt-*"))
        assert snaps
        capsys.readouterr()
        assert main(["ckpt", "info", str(snaps[0])]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["schema"] == "repro-ckpt/1" and info["intact"]
        stats_json = tmp_path / "final.json"
        assert main(["ckpt", "resume", str(snaps[0]),
                     "--stats-json", str(stats_json)]) == 0
        payload = json.loads(stats_json.read_text())
        stats, cold = cold_reference()
        assert payload["reason"] == "exit"
        assert payload["end_time_ps"] == cold.end_time
        assert payload["stats"] == {k: stats[k] for k in stats}

    def test_info_reports_corruption(self, tmp_path, capsys):
        from repro.__main__ import main

        sim = build(small_graph(), seed=7)
        sim.run(max_time="50ns", finalize=False)
        path = snapshot(sim, tmp_path / "snap")
        shard = path / "shard-0000.pkl"
        blob = bytearray(shard.read_bytes())
        blob[0] ^= 0xFF
        shard.write_bytes(bytes(blob))
        assert main(["ckpt", "info", str(path)]) == 1
        capsys.readouterr()
        assert main(["ckpt", "resume", str(path)]) == 1
        assert "corrupt" in capsys.readouterr().err
