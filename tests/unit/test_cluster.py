"""Tests for the cluster workload family and the subcomponent-slot layer.

Covers the slot mechanics end to end (registry resolution, choices and
base-class validation at graph build, scoped sub-params, statistics
registered through the parent), the scheduling pipeline itself
(conservation, rejection, policy ablation, determinism), checkpointing
an in-flight backfill queue plus the generator-backed job stream, the
SWF-style trace reader, and the bursty ≥1M-event heap stress demanded
by the workload's scale.
"""

from __future__ import annotations

import pytest

from repro.cluster import JobSource, Scheduler
from repro.cluster.scheduler import EASYBackfillPolicy, FCFSPolicy
from repro.config import ConfigGraph, build
from repro.config.graph import ConfigError
from repro.core import SubComponent, sweep_axes
from repro.core.eventqueue import HeapEventQueue
from repro.core.event import _RECORD_POOL_MAX, record_pool_size, release_record


def cluster_graph(policy="cluster.FCFS", jobs=300, nodes=16, *,
                  mode="poisson", mean_interarrival="2ms",
                  mean_runtime="40ms", extra_sched=None,
                  source_extra=None) -> ConfigGraph:
    g = ConfigGraph("test-cluster")
    g.component("src", "cluster.JobSource",
                {"jobs": jobs, "mode": mode,
                 "mean_interarrival": mean_interarrival,
                 "mean_runtime": mean_runtime, "max_nodes": 8,
                 "window": 4, **(source_extra or {})})
    g.component("sched", "cluster.Scheduler",
                {"nodes": nodes, "policy": policy, **(extra_sched or {})})
    g.component("pool", "cluster.NodePool", {"nodes": nodes})
    g.component("slo", "cluster.SLOStats", {"capacity": nodes})
    g.link("src", "out", "sched", "submit", latency="10ns")
    g.link("sched", "pool", "pool", "sched", latency="10ns")
    g.link("sched", "report", "slo", "report", latency="10ns")
    return g


class TestSlotMechanics:
    def test_slot_resolves_registered_type_from_params(self):
        sim = build(cluster_graph("cluster.EASYBackfill"), seed=3)
        sched = sim.component("sched")
        assert isinstance(sched.policy, EASYBackfillPolicy)
        assert isinstance(sched.policy, SubComponent)
        assert sched.policy.parent is sched
        assert sched.policy.name == "policy"

    def test_slot_default_used_when_param_absent(self):
        from repro.core import Params, Simulation

        sim = Simulation(seed=1)
        sched = Scheduler(sim, "s", Params({"nodes": 4}))
        assert isinstance(sched.policy, FCFSPolicy)

    def test_sub_statistics_register_on_parent(self):
        sim = build(cluster_graph("cluster.EASYBackfill"), seed=3)
        sched = sim.component("sched")
        registered = sched.stats.all()
        assert registered["policy.scheduled"] is sched.policy.s_scheduled
        assert registered["policy.backfilled"] is sched.policy.s_backfilled
        sim.run()
        # Slot stats surface through the ordinary engine rollup.
        values = sim.stat_values()
        assert "sched.policy.scheduled" in values
        assert values["sched.policy.scheduled"] > 0

    def test_scoped_slot_params_reach_the_subcomponent(self):
        sim = build(cluster_graph("cluster.EASYBackfill",
                                  extra_sched={"policy.scan_limit": 5}),
                    seed=3)
        assert sim.component("sched").policy.scan_limit == 5

    def test_unknown_slot_type_is_build_time_config_error(self):
        with pytest.raises(ConfigError, match="unknown subcomponent type"):
            build(cluster_graph("cluster.NoSuchPolicy"), seed=3)

    def test_component_type_in_slot_rejected(self):
        # A Component is not a SubComponent: the slot's base check fires.
        with pytest.raises(ConfigError):
            build(cluster_graph("cluster.JobSource"), seed=3)

    def test_slot_choices_enforced(self):
        # Registered subcomponent of the right base but outside choices.
        from repro.core.registry import register

        @register("testlib.RoguePolicy")
        class RoguePolicy(FCFSPolicy):
            pass

        with pytest.raises(ConfigError, match="not one of"):
            build(cluster_graph("testlib.RoguePolicy"), seed=3)

    def test_subcomponent_rng_is_stable_per_slot(self):
        sim = build(cluster_graph(), seed=3)
        sim2 = build(cluster_graph(), seed=3)
        a = sim.component("sched").policy.rng.integers(0, 1 << 30, 4)
        b = sim2.component("sched").policy.rng.integers(0, 1 << 30, 4)
        assert list(a) == list(b)

    def test_telemetry_gauges_include_slot_state(self):
        sim = build(cluster_graph("cluster.EASYBackfill"), seed=3)
        gauges = sim.component("sched").telemetry_gauges()
        assert "policy._shadow_ps" in gauges


class TestSweepAxes:
    def test_scheduler_policy_axis_from_slot_choices(self):
        axes = sweep_axes(Scheduler)
        assert axes["policy"] == ("cluster.FCFS", "cluster.EASYBackfill",
                                  "cluster.Priority")

    def test_param_choices_become_axes(self):
        axes = sweep_axes(JobSource)
        assert axes["mode"] == ("poisson", "burst", "trace")

    def test_params_without_choices_are_not_axes(self):
        assert "jobs" not in sweep_axes(JobSource)
        assert "nodes" not in sweep_axes(Scheduler)


class TestClusterPipeline:
    def test_every_submitted_job_completes_and_reports(self):
        sim = build(cluster_graph(jobs=200), seed=7, validate_events=True)
        result = sim.run()
        assert result.reason == "exit"
        v = sim.stat_values()
        assert v["src.emitted"] == 200
        assert v["sched.submitted"] == 200
        assert v["sched.completed"] == 200
        assert v["slo.jobs"] == 200
        # all nodes returned, nothing left allocated
        sched = sim.component("sched")
        assert sched._free == sched.nodes and not sched._running

    def test_too_wide_jobs_rejected_not_wedged(self):
        # 8-node-wide jobs against a 4-node machine must be dropped
        # without stalling the exit protocol.
        sim = build(cluster_graph(jobs=120, nodes=4), seed=7)
        result = sim.run()
        assert result.reason == "exit"
        v = sim.stat_values()
        assert v["sched.rejected"] > 0
        assert v["sched.submitted"] + v["sched.rejected"] == 120
        assert v["sched.completed"] == v["sched.submitted"]

    def test_backfill_strictly_beats_fcfs_utilization(self):
        def util(policy):
            sim = build(cluster_graph(policy, jobs=400), seed=7)
            sim.run()
            return sim.component("slo").manifest_summary()

        fcfs, easy = util("cluster.FCFS"), util("cluster.EASYBackfill")
        assert easy["utilization"] > fcfs["utilization"]
        assert easy["jobs"] == fcfs["jobs"] == 400
        assert easy["makespan_s"] <= fcfs["makespan_s"]

    def test_same_seed_same_stats(self):
        runs = []
        for _ in range(2):
            sim = build(cluster_graph("cluster.EASYBackfill", jobs=150),
                        seed=11)
            sim.run()
            runs.append(sim.stat_values())
        assert runs[0] == runs[1]

    def test_burst_mode_floods_same_timestamp(self):
        sim = build(cluster_graph(jobs=128, mode="burst",
                                  source_extra={"burst_size": 32,
                                                "burst_gap": "100ms"}),
                    seed=7)
        result = sim.run()
        assert result.reason == "exit"
        assert sim.stat_values()["slo.jobs"] == 128

    def test_torus_placement_records_span(self):
        sim = build(cluster_graph(jobs=150), seed=7)
        sim.run()
        v = sim.stat_values()
        assert v["pool.energy_j"] > 0
        pool = sim.component("pool")
        assert pool.s_span.count > 0
        assert pool.s_span.maximum <= sum(pool._dims)

    def test_manifest_carries_slo_summary(self):
        from repro.obs import build_manifest

        g = cluster_graph(jobs=100)
        sim = build(g, seed=7)
        result = sim.run()
        manifest = build_manifest(sim, result, graph=g)
        slo = manifest["summary"]["slo"]
        assert slo["jobs"] == 100
        assert 0 < slo["utilization"] <= 1
        assert slo["p95_bounded_slowdown"] >= 1


class TestClusterCheckpoint:
    def test_snapshot_mid_backfill_restores_bit_identical(self, tmp_path):
        from repro.ckpt import restore, snapshot

        def make():
            return cluster_graph("cluster.EASYBackfill", jobs=250)

        cold = build(make(), seed=7)
        cold_result = cold.run()
        cold_stats = cold.stat_values()

        warm = build(make(), seed=7)
        warm.run(max_time=cold_result.end_time // 2, finalize=False)
        sched = warm.component("sched")
        # The snapshot genuinely lands mid-backfill: pending queue and
        # in-flight jobs both non-empty.
        assert sched._queue or sched._running
        path = snapshot(warm, tmp_path / "mid-backfill")
        resumed = restore(path)
        # Restored slot holds a fresh, equivalent subcomponent.
        rsched = resumed.component("sched")
        assert isinstance(rsched.policy, EASYBackfillPolicy)
        assert rsched.policy.parent is rsched
        result = resumed.run()
        assert resumed.stat_values() == cold_stats
        assert result.end_time == cold_result.end_time

    def test_checkpoint_size_independent_of_trace_length(self, tmp_path):
        """Generator-backed arrival state: a 100x longer trace must not
        grow the snapshot (the stream is replayed, not stored)."""
        from repro.ckpt import snapshot

        sizes = {}
        for jobs in (1_000, 100_000):
            sim = build(cluster_graph(jobs=jobs), seed=7)
            sim.run(max_time=100_000_000, finalize=False)  # 100us warmup
            path = snapshot(sim, tmp_path / f"snap-{jobs}")
            sizes[jobs] = sum(f.stat().st_size
                              for f in path.rglob("*") if f.is_file())
            sim.finish()
        assert sizes[100_000] < sizes[1_000] * 1.5

    def test_restored_source_continues_exact_stream(self, tmp_path):
        from repro.ckpt import restore, snapshot

        cold = build(cluster_graph(jobs=120), seed=13)
        cold.run()
        cold_emitted = cold.stat_values()["src.emitted"]

        warm = build(cluster_graph(jobs=120), seed=13)
        warm.run(max_time=50_000_000_000, finalize=False)
        resumed = restore(snapshot(warm, tmp_path / "src-snap"))
        resumed.run()
        assert resumed.stat_values()["src.emitted"] == cold_emitted


class TestTraceReader:
    SWF = """\
; SWF-ish header comment
# another comment
1 0    0 120 2  -1 -1 2 200 -1
2 5    0  60 1  -1 -1 1 100 -1
3 12   0 240 4  -1 -1 4 300 -1
4 30   0  30 1  -1 -1 1  -1 -1
"""

    def test_swf_trace_drives_the_pipeline(self, tmp_path):
        trace = tmp_path / "tiny.swf"
        trace.write_text(self.SWF, encoding="utf-8")
        g = cluster_graph(mode="trace",
                          source_extra={"trace": str(trace),
                                        "trace_unit": "1ms", "jobs": 0})
        sim = build(g, seed=7)
        result = sim.run()
        assert result.reason == "exit"
        v = sim.stat_values()
        assert v["src.emitted"] == 4
        assert v["slo.jobs"] == 4
        # submit gaps respect the trace: last submit at 30 trace-seconds
        slo = sim.component("slo")
        assert slo.s_submit.maximum == 30 * 1_000_000_000  # 30 x 1ms

    def test_trace_job_cap(self, tmp_path):
        trace = tmp_path / "tiny.swf"
        trace.write_text(self.SWF, encoding="utf-8")
        g = cluster_graph(mode="trace",
                          source_extra={"trace": str(trace),
                                        "trace_unit": "1ms", "jobs": 2})
        sim = build(g, seed=7)
        sim.run()
        assert sim.stat_values()["src.emitted"] == 2


class TestArrivalStress:
    """Satellite: >=1M queued arrival events through the heap path."""

    def test_million_event_burst_waves_stay_bounded_and_ordered(self):
        queue = HeapEventQueue()
        total = 1_000_000
        wave = 50_000  # live queue depth per wave (bursty flood shape)
        pushed = popped = 0
        t = 0
        last = (-1, -1, -1)
        while popped < total:
            while pushed < total and pushed - popped < wave:
                # bursts of 64 share a timestamp, like burst arrivals
                t += 1 if pushed % 64 == 0 else 0
                queue.push(t, pushed % 3, None, None)
                pushed += 1
            record = queue.pop()
            key = (record.time, record.priority, record.seq)
            assert key > last, f"pop order regressed: {key} after {last}"
            last = key
            popped += 1
            release_record(record)
            # The free-list pool must respect its cap while a million
            # records cycle through it.
            assert record_pool_size() <= _RECORD_POOL_MAX
        assert len(queue) == 0
        assert queue.seq == total
