"""Tests for rank-local telemetry: per-rank streams, cross-rank trace
merge, and sync/load-imbalance diagnostics.

The load-bearing property: observability output is equivalent across
all three execution backends.  The processes backend cannot share
memory with the parent, so its coverage flows through the rank plan
(per-rank JSONL shards or pipe batches, harvested profile buckets) —
these tests pin that the numbers coming back match what the in-process
backends record directly.
"""

import json
import warnings as _warnings

import pytest

from repro.config import ConfigGraph, build_parallel, save
from repro.core import Component, register
from repro.core.backends import BACKENDS, RankObservabilityWarning
from repro.obs import (ChromeTraceExporter, HandlerProfiler,
                       TelemetryRecorder, analyze)
from repro.obs.merge import RunArtifacts, find_rank_shards, merge_trace

ALL_BACKENDS = sorted(BACKENDS)


def traffic_graph(rounds=40, count=30):
    """A partitionable graph with cross-rank traffic on every backend."""
    graph = ConfigGraph("rank-obs")
    for i in range(2):
        graph.component(f"src{i}", "testlib.Source",
                        {"count": count, "period": "2ns"})
        graph.component(f"sink{i}", "testlib.Sink", {})
        graph.link(f"src{i}", "out", f"sink{i}", "in", latency="5ns")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": rounds})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="7ns")
    return graph


def run_with_metrics(tmp_path, backend, *, name="m.jsonl", seed=9,
                     ranks=2, sample_every=5, profile=False, chrome=False):
    """One instrumented parallel run; returns (metrics_path, extras)."""
    psim = build_parallel(traffic_graph(), ranks, strategy="round_robin",
                          seed=seed, backend=backend)
    metrics = tmp_path / name
    telemetry = TelemetryRecorder(metrics, sample_every_events=sample_every)
    telemetry.attach(psim)
    profiler = HandlerProfiler(psim) if profile else None
    exporter = ChromeTraceExporter() if chrome else None
    if exporter is not None:
        exporter.attach(psim)
    result = psim.run()
    manifest = telemetry.finalize(result)
    if exporter is not None:
        exporter.detach()
    return metrics, {"result": result, "manifest": manifest,
                     "profiler": profiler, "exporter": exporter,
                     "psim": psim}


class TestRankShards:
    def test_processes_run_writes_one_shard_per_rank(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "processes")
        shards = find_rank_shards(metrics)
        assert sorted(shards) == [0, 1]
        for rank, shard in shards.items():
            records = [json.loads(line) for line in
                       shard.read_text().splitlines()]
            kinds = [r["kind"] for r in records]
            assert kinds[0] == "rank_start"
            assert kinds[-1] == "rank_end"
            assert "rank_epoch" in kinds
            assert all(r["rank"] == rank for r in records)
        start = records[0]
        assert start["schema"] == "repro-rank-stream/1"
        assert start["backend"] == "processes"
        assert start["ranks"] == 2

    def test_shard_epoch_events_match_run_totals(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "processes")
        total = 0
        for shard in find_rank_shards(metrics).values():
            for line in shard.read_text().splitlines():
                record = json.loads(line)
                if record["kind"] == "rank_epoch":
                    total += record["events"]
        assert total == extras["result"].events_executed

    def test_manifest_records_backend_ranks_and_shards(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "processes")
        manifest = extras["manifest"]
        telemetry = manifest["telemetry"]
        assert telemetry["backend"] == "processes"
        assert telemetry["ranks"] == 2
        assert len(telemetry["rank_shards"]) == 2
        assert set(telemetry["rank_records"]) == {"0", "1"}
        assert telemetry["rank_records"]["0"]["records"] > 0
        assert manifest["engine"]["sync"]["strategy"] == "conservative"
        # and the same inventory is in the on-disk copy
        on_disk = json.loads(
            metrics.with_name(metrics.name + ".manifest.json").read_text())
        assert on_disk["telemetry"] == telemetry

    def test_rank_counters_harvest_into_engine_stats(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "processes")
        merged = extras["psim"].sync_stats()
        assert merged["obs.rank_records"].count > 0
        # parent-maintained sync stats survived the adoption
        assert merged["sync.epochs"].count == 2 * extras["result"].epochs


class TestBackendEquivalence:
    def test_epoch_records_identical_shape_across_backends(self, tmp_path):
        streams = {}
        for backend in ALL_BACKENDS:
            metrics, _ = run_with_metrics(tmp_path, backend,
                                          name=f"{backend}.jsonl")
            epochs = RunArtifacts(metrics).epochs
            streams[backend] = [
                (e["epoch"], tuple(e["window_ps"]), e["events"],
                 e["exchanged"], tuple(e["per_rank_events"]))
                for e in epochs
            ]
        assert streams["serial"] == streams["threads"] == streams["processes"]

    def test_heartbeat_samples_delivered_on_every_backend(self, tmp_path):
        for backend in ALL_BACKENDS:
            metrics, _ = run_with_metrics(tmp_path, backend,
                                          name=f"hb-{backend}.jsonl",
                                          sample_every=10)
            artifacts = RunArtifacts(metrics)
            if backend == "processes":
                samples = [r for records in artifacts.rank_records.values()
                           for r in records if r["kind"] == "rank_sample"]
                assert samples, "workers should heartbeat into their shards"
                assert {s["rank"] for s in samples} == {0, 1}
            else:
                # in-process backends keep the parent's epoch telemetry
                assert artifacts.epochs

    def test_pipe_batches_reach_inmemory_recorder(self):
        """Shard-less mode: a sink-less TelemetryRecorder still receives
        rank-local records, shipped over the pipes with the steps."""
        psim = build_parallel(traffic_graph(), 2, strategy="round_robin",
                              seed=9, backend="processes")
        telemetry = TelemetryRecorder(sample_every_events=10)
        telemetry.attach(psim)
        result = psim.run()
        telemetry.finalize(result)
        kinds = {r["kind"] for r in telemetry.records}
        assert "rank_epoch" in kinds
        by_rank = {r["rank"] for r in telemetry.records
                   if r["kind"] == "rank_epoch"}
        assert by_rank == {0, 1}

    def test_profiler_counts_match_across_backends(self, tmp_path):
        counts = {}
        for backend in ALL_BACKENDS:
            metrics, extras = run_with_metrics(tmp_path, backend,
                                               name=f"prof-{backend}.jsonl",
                                               profile=True)
            rows = extras["profiler"].rows()
            assert {row.rank for row in rows} == {0, 1}, backend
            counts[backend] = sorted(
                (row.rank, row.component, row.handler, row.event_type,
                 row.count) for row in rows)
            assert sum(row.count for row in rows) == \
                extras["result"].events_executed, backend
        assert counts["serial"] == counts["threads"] == counts["processes"]


class TestObservabilityWarning:
    def test_uncovered_observer_warns_once_with_name(self):
        psim = build_parallel(traffic_graph(), 2, seed=9,
                              backend="processes")
        seen = []
        psim.rank_sim(0).add_trace_observer(
            lambda t, h, e: seen.append(t))
        with pytest.warns(RankObservabilityWarning) as caught:
            psim.run()
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "rank 0" in message
        assert "obs merge" in message
        assert not seen  # the observer's memory died with the worker

    def test_plan_covered_instruments_do_not_warn(self, tmp_path):
        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RankObservabilityWarning)
            run_with_metrics(tmp_path, "processes", profile=True,
                             chrome=True)


class TestMerge:
    def test_merged_trace_has_rank_lanes_and_sync_lane(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "processes", chrome=True)
        trace = merge_trace(RunArtifacts(metrics))
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1, 2}  # ranks + sync
        sync_spans = [e for e in spans if e["pid"] == 2]
        assert any(e["cat"] == "sync" for e in sync_spans)
        assert any("lookahead_ps" in e.get("args", {}) for e in sync_spans)
        rank_epochs = [e for e in spans
                       if e["pid"] in (0, 1) and e["cat"] == "epoch"]
        assert rank_epochs
        assert all(e["ts"] >= 0 for e in spans)
        # per-handler spans made it out of the workers and into lanes
        handler_spans = [e for e in spans
                        if e["pid"] in (0, 1) and e["cat"] != "epoch"]
        assert handler_spans
        assert trace["otherData"]["ranks"] == 2
        assert trace["otherData"]["backend"] == "processes"

    def test_merge_works_for_inprocess_backends_too(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "serial")
        trace = merge_trace(RunArtifacts(metrics))
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # rank lanes synthesized from the parent's per-rank walls
        assert {0, 1}.issubset({e["pid"] for e in spans})

    def test_merge_deterministic_event_counts(self, tmp_path):
        """Same seed => identical merged per-rank event counts."""
        per_run = []
        for attempt in range(2):
            metrics, _ = run_with_metrics(tmp_path, "processes",
                                          name=f"det-{attempt}.jsonl")
            artifacts = RunArtifacts(metrics)
            per_rank = {}
            for rank, records in artifacts.rank_records.items():
                per_rank[rank] = sum(r["events"] for r in records
                                     if r["kind"] == "rank_epoch")
            per_run.append(per_rank)
        assert per_run[0] == per_run[1]
        assert sum(per_run[0].values()) > 0


class TestImbalance:
    def test_every_epoch_attributed_to_a_bounding_rank(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "processes")
        report = analyze(metrics)
        assert report.epochs == extras["result"].epochs
        assert len(report.attributions) == report.epochs
        assert report.attributions  # >= 1 epoch attributed
        assert all(a.bounding_rank in (0, 1) for a in report.attributions)
        assert sum(r.epochs_bounded for r in report.ranks) == report.epochs
        assert report.imbalance_factor >= 1.0
        assert report.events_skew >= 1.0
        critical = report.critical_rank
        assert critical is not None and critical.epochs_bounded > 0

    def test_rank_events_total_matches_run(self, tmp_path):
        metrics, extras = run_with_metrics(tmp_path, "serial")
        report = analyze(metrics)
        assert sum(r.events for r in report.ranks) == \
            extras["result"].events_executed

    def test_text_report_names_backend_and_ranks(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "processes")
        text = analyze(metrics).report()
        assert "backend=processes" in text
        assert "critical rank:" in text
        assert "imbalance factor:" in text
        payload = analyze(metrics).as_dict()
        assert payload["ranks"] == 2
        assert payload["per_epoch"]


class TestObsCli:
    def test_merge_imbalance_report_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        config = tmp_path / "machine.json"
        save(traffic_graph(), config)
        metrics = tmp_path / "cli.jsonl"
        assert main(["run", str(config), "--ranks", "2",
                     "--backend", "processes",
                     "--metrics", str(metrics)]) == 0
        assert main(["obs", "merge", str(metrics)]) == 0
        merged = metrics.with_name(metrics.name + ".trace.json")
        assert merged.exists()
        trace = json.loads(merged.read_text())
        assert trace["traceEvents"]
        assert main(["obs", "imbalance", str(metrics),
                     "--json", str(tmp_path / "imb.json")]) == 0
        assert json.loads((tmp_path / "imb.json").read_text())["per_epoch"]
        assert main(["obs", "report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "backend: processes" in out
        assert "rank shards:" in out


class TestObsCliErrors:
    """Satellite: every obs subcommand fails with a one-line error (exit
    1), never a traceback, on missing or broken inputs."""

    def _run_metrics(self, tmp_path):
        config = tmp_path / "machine.json"
        save(traffic_graph(), config)
        metrics = tmp_path / "ok.jsonl"
        from repro.__main__ import main

        assert main(["run", str(config), "--ranks", "2",
                     "--metrics", str(metrics)]) == 0
        return metrics

    @pytest.mark.parametrize("sub", ["merge", "imbalance", "report"])
    def test_missing_metrics_stream(self, tmp_path, capsys, sub):
        from repro.__main__ import main

        assert main(["obs", sub, str(tmp_path / "missing.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "missing.jsonl" in err

    def test_empty_metrics_stream_merges_to_empty_trace(self, tmp_path,
                                                        capsys):
        from repro.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "merge", str(empty)]) == 0
        captured = capsys.readouterr()
        assert "0 epochs, 0 shards" in captured.out
        assert "Traceback" not in captured.err

    def test_empty_metrics_stream_imbalance_notes_no_epochs(self, tmp_path,
                                                            capsys):
        from repro.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "imbalance", str(empty)]) == 0
        captured = capsys.readouterr()
        assert "no epoch records" in captured.out
        assert "Traceback" not in captured.err

    def test_report_on_empty_stream_is_graceful(self, tmp_path, capsys):
        from repro.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        # An empty stream still has a printable (if vacuous) report.
        code = main(["obs", "report", str(empty)])
        captured = capsys.readouterr()
        assert code in (0, 1)
        assert "Traceback" not in captured.err

    def test_malformed_manifest_reported(self, tmp_path, capsys):
        from repro.__main__ import main

        metrics = self._run_metrics(tmp_path)
        manifest = metrics.with_name(metrics.name + ".manifest.json")
        manifest.write_text("{not json")
        assert main(["obs", "report", str(metrics)]) == 1
        err = capsys.readouterr().err
        assert "malformed manifest" in err
        assert "Traceback" not in err

    def test_report_surfaces_checkpoint_lineage(self, tmp_path, capsys):
        from repro.__main__ import main

        metrics = self._run_metrics(tmp_path)
        manifest = metrics.with_name(metrics.name + ".manifest.json")
        doc = json.loads(manifest.read_text())
        doc["checkpoint"] = {
            "restored_from": {"snapshot": "warm/ckpt-100", "schema": 1,
                              "sim_time_ps": 123_000, "mode": "exact"},
            "written": ["out/ckpt-200", "out/ckpt-400"],
        }
        manifest.write_text(json.dumps(doc))
        assert main(["obs", "report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert ("checkpoint lineage: restored from warm/ckpt-100 "
                "at 123000 ps (exact restore)") in out
        assert "snapshots written: 2" in out
        assert "out/ckpt-400" in out


class TestMergeDegradation:
    """Satellite: a missing or truncated rank shard degrades the merge
    gracefully — one warning naming the rank, the remaining lanes still
    merged, and the gap marked in the trace itself."""

    def test_missing_shard_warns_and_merges_the_rest(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "processes")
        find_rank_shards(metrics)[1].unlink()
        with pytest.warns(RuntimeWarning, match=r"missing rank shard\(s\): 1"):
            artifacts = RunArtifacts(metrics)
        assert artifacts.missing_ranks == [1]
        assert artifacts.truncated_ranks == []
        trace = merge_trace(artifacts)
        # rank 0's lane survived
        assert any(e["ph"] == "X" and e["pid"] == 0
                   for e in trace["traceEvents"])
        # the gap is in the trace, not only on stderr
        markers = [e for e in trace["traceEvents"] if e.get("cat") == "merge"]
        assert ["rank 1 shard missing — lane incomplete"] == \
            [m["name"] for m in markers]
        assert markers[0]["pid"] == 1
        assert trace["otherData"]["missing_rank_shards"] == [1]

    def test_truncated_shard_warns_and_is_marked(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "processes")
        shard = find_rank_shards(metrics)[0]
        kept = [line for line in shard.read_text().splitlines()
                if json.loads(line)["kind"] != "rank_end"]
        shard.write_text("\n".join(kept) + "\n")
        with pytest.warns(RuntimeWarning,
                          match=r"truncated rank shard\(s\).*: 0"):
            artifacts = RunArtifacts(metrics)
        assert artifacts.truncated_ranks == [0]
        trace = merge_trace(artifacts)
        assert any(e.get("cat") == "merge"
                   and e["name"] == "rank 0 shard truncated — lane incomplete"
                   for e in trace["traceEvents"])
        assert trace["otherData"]["truncated_rank_shards"] == [0]
        # rank 0's surviving epoch spans still merged
        assert any(e["ph"] == "X" and e["pid"] == 0
                   for e in trace["traceEvents"])

    def test_intact_run_warns_nothing(self, tmp_path):
        metrics, _ = run_with_metrics(tmp_path, "processes")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            artifacts = RunArtifacts(metrics)
        assert artifacts.missing_ranks == []
        assert artifacts.truncated_ranks == []
        other = merge_trace(artifacts)["otherData"]
        assert "missing_rank_shards" not in other
        assert "truncated_rank_shards" not in other


@register("testlib.BusyClocked")
class BusyClocked(Component):
    """A clocked component whose ticks burn configurable wall time."""

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.work = self.params.find_int("work", 0)
        self.n_ticks = self.params.find_int("n_ticks", 50)
        self.ticks = self.stats.counter("ticks")
        self.register_clock("1GHz", self.on_tick)

    def on_tick(self, cycle):
        self.ticks.add()
        if self.work:
            sum(range(self.work))
        return cycle >= self.n_ticks


class TestImbalanceArbiterAblation:
    """Satellite: straggler attribution is about *wall time per rank*,
    so the shared-clock arbiter (which collapses tick records) must not
    change which rank a skewed fabric's epochs are attributed to."""

    def _skewed_graph(self):
        graph = ConfigGraph("skewed")
        # round_robin: busy -> rank 0, light -> rank 1; the pingpong
        # pair keeps real cross-rank epochs flowing.
        graph.component("busy", "testlib.BusyClocked",
                        {"work": 30000, "n_ticks": 80})
        graph.component("light", "testlib.BusyClocked",
                        {"work": 0, "n_ticks": 80})
        graph.component("ping", "testlib.PingPong",
                        {"initiator": True, "n_round_trips": 40})
        graph.component("pong", "testlib.PingPong", {})
        graph.link("ping", "io", "pong", "io", latency="7ns")
        return graph

    def _critical_rank(self, tmp_path, arbiter_on, monkeypatch):
        monkeypatch.setenv("REPRO_CLOCK_ARBITER",
                           "1" if arbiter_on else "0")
        psim = build_parallel(self._skewed_graph(), 2,
                              strategy="round_robin", seed=3,
                              backend="serial")
        metrics = tmp_path / f"arb-{int(arbiter_on)}.jsonl"
        telemetry = TelemetryRecorder(metrics)
        telemetry.attach(psim)
        result = psim.run()
        telemetry.finalize(result)
        report = analyze(metrics)
        assert report.attributions
        critical = report.critical_rank
        assert critical is not None
        return critical.rank

    def test_same_straggler_with_and_without_arbiter(self, tmp_path,
                                                     monkeypatch):
        with_arbiter = self._critical_rank(tmp_path, True, monkeypatch)
        without = self._critical_rank(tmp_path, False, monkeypatch)
        assert with_arbiter == without == 0
