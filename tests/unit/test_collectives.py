"""Tests for the collective operations of the skeleton-app engine."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import build
from repro.core import Params
from repro.core.registry import _REGISTRY, register
from repro.miniapps import (AllReduce, AllToAll, AppRank, Barrier, Broadcast,
                            Compute, Reduce, app_runtime_stats,
                            build_app_machine)


def _collective_app(phases_fn, type_name):
    """Register (once) an AppRank subclass running ``phases_fn``."""
    if type_name in _REGISTRY:
        return type_name

    class CollectiveApp(AppRank):
        def program(self):
            yield from phases_fn(self)

    register(type_name)(CollectiveApp)
    return type_name


def run_collective(phases_fn, n_ranks, type_name, seed=2):
    _collective_app(phases_fn, type_name)
    graph = build_app_machine(type_name, n_ranks, iterations=1)
    sim = build(graph, seed=seed)
    result = sim.run()
    assert result.reason == "exit", f"{type_name} deadlocked at n={n_ranks}"
    return sim


class TestBroadcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16])
    def test_completes_any_rank_count(self, n):
        sim = run_collective(
            lambda app: iter([Broadcast(4096, key="bc0")]),
            n, f"testlib.Bcast{n}")
        stats = app_runtime_stats(sim, n)
        # A binomial broadcast sends exactly n-1 messages.
        assert stats["messages"] == n - 1

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        n = 6
        sim = run_collective(
            lambda app: iter([Broadcast(4096, key="bc0", root=root)]),
            n, f"testlib.BcastRoot{root}")
        assert app_runtime_stats(sim, n)["messages"] == n - 1

    def test_latency_logarithmic(self):
        """Broadcast completion grows ~log2(n), not linearly."""
        def runtime(n):
            sim = run_collective(
                lambda app: iter([Broadcast(64, key="bc0")]),
                n, f"testlib.BcastLat{n}")
            return app_runtime_stats(sim, n)["runtime_ps"]

        t4, t16 = runtime(4), runtime(16)
        # 4 ranks: 2 levels; 16 ranks: 4 levels -> about 2x, far from 4x.
        assert t16 < 3.0 * t4


class TestReduce:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 11, 16])
    def test_completes_any_rank_count(self, n):
        sim = run_collective(
            lambda app: iter([Reduce(4096, key="rd0")]),
            n, f"testlib.Reduce{n}")
        assert app_runtime_stats(sim, n)["messages"] == n - 1

    def test_nonzero_root(self):
        n = 7
        sim = run_collective(
            lambda app: iter([Reduce(4096, key="rd0", root=2)]),
            n, f"testlib.ReduceRoot2")
        assert app_runtime_stats(sim, n)["messages"] == n - 1

    def test_reduce_then_broadcast_is_allreduce_shaped(self):
        """reduce+broadcast moves 2(n-1) messages; recursive-doubling
        all-reduce moves n*log2(n) — both must complete and the engine
        must keep their keys separate."""
        n = 8

        def program(app):
            yield Reduce(8, key="rd")
            yield Broadcast(8, key="bc")
            yield AllReduce(8, key="ar")

        sim = run_collective(program, n, "testlib.RBvsAR")
        stats = app_runtime_stats(sim, n)
        expected = 2 * (n - 1) + n * int(math.log2(n))
        assert stats["messages"] == expected


class TestBarrierAndAllToAll:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_barrier_synchronises(self, n):
        """Ranks with staggered compute all leave the barrier at (or
        after) the slowest rank's arrival."""

        def program(app):
            yield Compute(1_000_000 * (app.rank + 1))  # staggered
            yield Barrier(key="bar0")

        sim = run_collective(program, n, f"testlib.Barrier{n}")
        values = sim.stat_values()
        finishes = [values[f"rank{i}.runtime_ps"] for i in range(n)]
        slowest_compute = 1_000_000 * n
        assert min(finishes) >= slowest_compute

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_alltoall_message_count(self, n):
        sim = run_collective(
            lambda app: iter([AllToAll(1024, key="a2a0")]),
            n, f"testlib.A2A{n}")
        assert app_runtime_stats(sim, n)["messages"] == n * (n - 1)

    def test_alltoall_heavier_than_allreduce(self):
        n = 8

        def a2a(app):
            yield AllToAll(4096, key="x")

        def ar(app):
            yield AllReduce(4096, key="x")

        sim_a = run_collective(a2a, n, "testlib.A2AHeavy")
        sim_r = run_collective(ar, n, "testlib.ARLight")
        assert app_runtime_stats(sim_a, n)["messages"] > \
            app_runtime_stats(sim_r, n)["messages"]


class TestMixedPrograms:
    @given(st.integers(2, 12), st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_random_collective_sequences_complete(self, n, root):
        """Any sequence of collectives with distinct keys terminates."""
        root = root % n

        def program(app):
            yield Broadcast(256, key="p1", root=root)
            yield AllReduce(8, key="p2")
            yield Reduce(256, key="p3", root=root)
            yield Barrier(key="p4")
            yield AllToAll(64, key="p5")

        type_name = f"testlib.Mixed{n}_{root}"
        sim = run_collective(program, n, type_name)
        stats = app_runtime_stats(sim, n)
        assert stats["runtime_ps"] > 0
