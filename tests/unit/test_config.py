"""Tests for the configuration layer: graph, serialization, builder, topology."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (ConfigError, ConfigGraph, build, build_crossbar,
                          build_fat_tree, build_parallel, build_ring,
                          build_torus, from_dict, from_json, load, save,
                          to_dict, to_json)
from repro.core import registry
from repro.core.registry import RegistryError
import tests.conftest  # noqa: F401  (registers testlib.* component types)


class TestConfigGraph:
    def test_component_declaration(self):
        g = ConfigGraph("m")
        c = g.component("a", "testlib.Sink", {"x": 1})
        assert c.name == "a"
        assert g.get_component("a") is c
        assert len(g) == 1

    def test_duplicate_component_rejected(self):
        g = ConfigGraph()
        g.component("a", "testlib.Sink")
        with pytest.raises(ConfigError):
            g.component("a", "testlib.Sink")

    def test_empty_names_rejected(self):
        g = ConfigGraph()
        with pytest.raises(ConfigError):
            g.component("", "testlib.Sink")
        with pytest.raises(ConfigError):
            g.component("a", "")

    def test_link_declaration(self):
        g = ConfigGraph()
        a = g.component("a", "t.A")
        b = g.component("b", "t.B")
        link = g.link(a, "out", b, "in", latency="5ns")
        assert link.latency == 5000
        assert g.num_links() == 1

    def test_link_by_name(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        g.component("b", "t.B")
        g.link("a", "out", "b", "in")
        assert g.num_links() == 1

    def test_link_unknown_component_rejected(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        with pytest.raises(ConfigError):
            g.link("a", "out", "ghost", "in")

    def test_port_reuse_rejected(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        g.component("b", "t.B")
        g.component("c", "t.C")
        g.link("a", "out", "b", "in")
        with pytest.raises(ConfigError):
            g.link("a", "out", "c", "in")

    def test_self_link(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        link = g.self_link("a", "loop", latency="2ns")
        assert link.is_self_link()

    def test_duplicate_link_name_rejected(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        g.component("b", "t.B")
        g.link("a", "o1", "b", "i1", name="L")
        with pytest.raises(ConfigError):
            g.link("a", "o2", "b", "i2", name="L")

    def test_validate_warns_isolated(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        g.component("b", "t.B")
        g.link("a", "o", "b", "i")
        g.component("island", "t.C")
        warnings = g.validate()
        assert any("island" in w for w in warnings)

    def test_validate_resolves_types(self):
        g = ConfigGraph()
        g.component("a", "no.SuchThing")
        with pytest.raises(RegistryError):
            g.validate(resolve_types=True)

    def test_chainable_param(self):
        g = ConfigGraph()
        c = g.component("a", "t.A").param("x", 1).param("y", 2)
        assert c.params == {"x": 1, "y": 2}

    def test_merge_with_prefix(self):
        node = ConfigGraph("node")
        node.component("cpu", "t.Cpu")
        node.component("mem", "t.Mem")
        node.link("cpu", "m", "mem", "c")
        machine = ConfigGraph("machine")
        machine.merge(node, prefix="n0.")
        machine.merge(node, prefix="n1.")
        assert machine.has_component("n0.cpu")
        assert machine.has_component("n1.mem")
        assert machine.num_links() == 2

    def test_partition_inputs(self):
        g = ConfigGraph()
        g.component("a", "t.A", weight=2.0)
        g.component("b", "t.B")
        g.link("a", "o", "b", "i", latency="3ns", weight=5.0)
        nodes, edges, weights = g.partition_inputs()
        assert nodes == ["a", "b"]
        assert edges[0].latency == 3000
        assert edges[0].weight == 5.0
        assert weights["a"] == 2.0

    def test_min_latency(self):
        g = ConfigGraph()
        g.component("a", "t.A")
        g.component("b", "t.B")
        assert g.min_latency() is None
        g.link("a", "o", "b", "i", latency="7ns")
        assert g.min_latency() == 7000

    def test_summary_counts_types(self):
        g = ConfigGraph("m")
        g.component("a", "t.A")
        g.component("b", "t.A")
        g.component("c", "t.B")
        text = g.summary()
        assert "x2" in text and "x1" in text


class TestSerialize:
    def _sample(self):
        g = ConfigGraph("sample")
        g.component("a", "testlib.Source", {"count": 3, "period": "1ns"}, weight=2.0)
        g.component("b", "testlib.Sink", rank=1)
        g.link("a", "out", "b", "in", latency="4ns", weight=1.5)
        g.self_link("a", "loop", latency="1ns")
        return g

    def test_roundtrip_dict(self):
        g = self._sample()
        g2 = from_dict(to_dict(g))
        assert to_dict(g2) == to_dict(g)

    def test_roundtrip_json(self):
        g = self._sample()
        g2 = from_json(to_json(g))
        assert to_dict(g2) == to_dict(g)

    def test_json_is_valid_and_versioned(self):
        doc = json.loads(to_json(self._sample()))
        assert doc["format"] == "pysst-config"
        assert doc["version"] == 1

    def test_file_roundtrip(self, tmp_path):
        g = self._sample()
        path = tmp_path / "machine.json"
        save(g, path)
        g2 = load(path)
        assert to_dict(g2) == to_dict(g)

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigError):
            from_dict({"format": "other"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ConfigError):
            from_dict({"format": "pysst-config", "version": 99})

    @given(
        n=st.integers(min_value=1, max_value=12),
        extra_links=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40)
    def test_random_graph_roundtrip(self, n, extra_links, seed):
        import random

        rng = random.Random(seed)
        g = ConfigGraph(f"rand{seed}")
        for i in range(n):
            g.component(f"c{i}", "t.X", {"k": rng.randint(0, 9)},
                        weight=rng.choice([1.0, 2.0]))
        used = set()
        for j in range(extra_links):
            a, b = rng.randrange(n), rng.randrange(n)
            pa, pb = f"p{j}a", f"p{j}b"
            if (f"c{a}", pa) in used or (f"c{b}", pb) in used:
                continue
            g.link(f"c{a}", pa, f"c{b}", pb, latency=rng.randint(1, 10**6))
            used.add((f"c{a}", pa))
            used.add((f"c{b}", pb))
        assert to_dict(from_json(to_json(g))) == to_dict(g)


class TestBuilder:
    def _graph(self, n_tokens=4):
        g = ConfigGraph("pipe")
        g.component("src", "testlib.Source", {"count": n_tokens, "period": "2ns"})
        g.component("sink", "testlib.Sink")
        g.link("src", "out", "sink", "in", latency="3ns")
        return g

    def test_build_and_run(self):
        sim = build(self._graph())
        result = sim.run()
        assert result.reason == "exhausted"
        assert sim.stat_values()["sink.received"] == 4

    def test_build_unknown_type(self):
        g = ConfigGraph()
        g.component("x", "no.Such")
        with pytest.raises(RegistryError):
            build(g)

    def test_build_parallel_matches_sequential(self):
        seq = build(self._graph(8), seed=4)
        seq.run()
        psim = build_parallel(self._graph(8), 2, strategy="round_robin", seed=4)
        psim.run()
        assert psim.stat_values() == seq.stat_values()

    def test_build_parallel_respects_rank_pins(self):
        g = self._graph()
        g.get_component("src").rank = 1
        g.get_component("sink").rank = 0
        psim = build_parallel(g, 2)
        assert psim.rank_sim(1).component("src")
        assert psim.rank_sim(0).component("sink")

    def test_rank_pin_out_of_range(self):
        g = self._graph()
        g.get_component("src").rank = 5
        with pytest.raises(ConfigError):
            build_parallel(g, 2)

    def test_build_with_self_link(self):
        g = ConfigGraph()
        g.component("src", "testlib.Source", {"count": 1, "period": "1ns"})
        g.component("sink", "testlib.Sink")
        g.link("src", "out", "sink", "in", latency="1ns")
        g.self_link("sink", "loop", latency="1ns")
        sim = build(g)
        sim.run()
        assert sim.stat_values()["sink.received"] == 1


class TestTopology:
    def test_torus_3d_component_count(self):
        g = ConfigGraph()
        topo = build_torus(g, (3, 3, 3), locals_per_router=2,
                           router_type="testlib.Sink")
        assert len(topo.router_names) == 27
        assert topo.num_endpoints == 54
        # 3 links per router in a 3D torus (each dim contributes n links
        # per ring of n): 27 routers * 3 dims = 81 links.
        assert g.num_links() == 81

    def test_torus_2wide_dimension_no_duplicate_wrap(self):
        g = ConfigGraph()
        build_torus(g, (2, 2), router_type="testlib.Sink")
        # Each ring of 2 has exactly 1 link: 2x2 torus -> 4 links.
        assert g.num_links() == 4

    def test_mesh_has_fewer_links_than_torus(self):
        g1, g2 = ConfigGraph(), ConfigGraph()
        build_torus(g1, (4, 4), router_type="testlib.Sink", wrap=True)
        build_torus(g2, (4, 4), router_type="testlib.Sink", wrap=False)
        assert g2.num_links() == g1.num_links() - 8  # 2 dims x 4 wrap links

    def test_ring(self):
        g = ConfigGraph()
        topo = build_ring(g, 5, router_type="testlib.Sink")
        assert topo.kind == "ring"
        assert len(topo.router_names) == 5
        assert g.num_links() == 5

    def test_router_params_carry_topology(self):
        g = ConfigGraph()
        build_torus(g, (2, 3), locals_per_router=2, router_type="testlib.Sink")
        comp = g.get_component("net.r1_2")
        assert comp.params["kind"] == "torus"
        assert comp.params["dims"] == "2x3"
        assert comp.params["coords"] == "1,2"
        assert comp.params["locals"] == 2

    def test_endpoint_attach(self):
        g = ConfigGraph()
        topo = build_torus(g, (2, 2), locals_per_router=1,
                           router_type="testlib.Sink")
        g.component("nic0", "testlib.Source", {"count": 1, "period": "1ns"})
        topo.attach(g, 0, "nic0", "out", latency="5ns")
        router, port = topo.endpoints[0]
        assert any(l.comp_a == "nic0" or l.comp_b == "nic0" for l in g.links())

    def test_fat_tree_structure(self):
        g = ConfigGraph()
        topo = build_fat_tree(g, leaves=4, down_ports=4, spines=2,
                              router_type="testlib.Sink")
        assert topo.num_endpoints == 16
        assert len(topo.router_names) == 6
        assert g.num_links() == 8  # 4 leaves x 2 spines

    def test_crossbar(self):
        g = ConfigGraph()
        topo = build_crossbar(g, 8, router_type="testlib.Sink")
        assert topo.num_endpoints == 8
        assert len(topo.router_names) == 1

    def test_invalid_dims(self):
        g = ConfigGraph()
        with pytest.raises(ValueError):
            build_torus(g, ())
        with pytest.raises(ValueError):
            build_torus(g, (0, 3))
        with pytest.raises(ValueError):
            build_fat_tree(g, leaves=0, down_ports=1, spines=1)
        with pytest.raises(ValueError):
            build_crossbar(g, 0)

    def test_torus_endpoint_indexing_row_major(self):
        g = ConfigGraph()
        topo = build_torus(g, (2, 2), locals_per_router=2,
                           router_type="testlib.Sink")
        # endpoint 5 -> router index 2 (coords (1,0)), local 1
        router, port = topo.endpoints[5]
        assert router == "net.r1_0"
        assert port == "local1"


class TestRegistry:
    def test_registered_types_include_testlib(self):
        assert "testlib.Sink" in registry.registered_types()

    def test_resolve_known(self):
        from tests.conftest import Sink

        assert registry.resolve("testlib.Sink") is Sink

    def test_resolve_unknown(self):
        with pytest.raises(RegistryError):
            registry.resolve("nolib.Nothing")

    def test_conflicting_registration_rejected(self):
        from repro.core import Component, register

        @register("testlib.Unique1")
        class A(Component):
            pass

        with pytest.raises(RegistryError):
            @register("testlib.Unique1")
            class B(Component):
                pass

    def test_reregister_same_class_ok(self):
        from repro.core import Component, register

        @register("testlib.Unique2")
        class C(Component):
            pass

        assert register("testlib.Unique2")(C) is C

    def test_register_non_component_rejected(self):
        from repro.core import register

        with pytest.raises(TypeError):
            register("testlib.Bad")(dict)
