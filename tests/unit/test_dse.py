"""Tests for the design-space exploration driver."""

import pytest

from repro.dse import (PAPER_TECHNOLOGIES, PAPER_WIDTHS, PAPER_WORKLOADS,
                       SweepResult, design_point_graph, run_design_point,
                       sweep)


class TestDesignPoint:
    def test_single_point_runs(self):
        point = run_design_point("hpccg", issue_width=2,
                                 technology="DDR3-1333",
                                 instructions=500_000)
        assert point.instructions == 500_000
        assert point.runtime_ps > 0
        assert point.performance > 0
        assert point.memory_technology == "DDR3-1333"

    def test_multi_core_point(self):
        solo = run_design_point("hpccg", n_cores=1, instructions=500_000)
        quad = run_design_point("hpccg", n_cores=4, instructions=500_000)
        # Four cores retire 4x instructions but contend for bandwidth.
        assert quad.instructions == 4 * 500_000
        assert quad.runtime_ps > solo.runtime_ps
        assert quad.core_power_w > solo.core_power_w

    def test_graph_shape(self):
        graph = design_point_graph("lulesh", issue_width=4,
                                   technology="GDDR5",
                                   instructions=100_000, n_cores=2)
        types = [c.type_name for c in graph.components()]
        assert types.count("processor.MixCore") == 2
        assert types.count("memory.NodeMemory") == 1
        assert graph.num_links() == 2

    def test_deterministic(self):
        a = run_design_point("lulesh", seed=5, instructions=500_000)
        b = run_design_point("lulesh", seed=5, instructions=500_000)
        assert a.runtime_ps == b.runtime_ps
        assert a.total_power_w == b.total_power_w

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_design_point("quake3")


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        return sweep(workloads=["hpccg"], widths=[1, 4],
                     technologies=["DDR3-1066", "GDDR5"],
                     instructions=500_000)

    def test_grid_complete(self, small_sweep):
        assert len(small_sweep.points) == 4
        for width in (1, 4):
            for tech in ("DDR3-1066", "GDDR5"):
                assert small_sweep.point("hpccg", width, tech)

    def test_speedup_helper(self, small_sweep):
        gain = small_sweep.speedup("hpccg", 4, "GDDR5", "DDR3-1066")
        assert gain > 0

    def test_best_by_metric(self, small_sweep):
        fastest = small_sweep.best("performance")
        assert fastest.issue_width == 4
        assert fastest.memory_technology == "GDDR5"
        per_dollar = small_sweep.best("perf_per_dollar")
        assert per_dollar is not None

    def test_best_with_workload_filter(self, small_sweep):
        assert small_sweep.best("performance", workload="hpccg")
        with pytest.raises(ValueError):
            small_sweep.best("performance", workload="doom")

    def test_missing_point_raises(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.point("hpccg", 8, "GDDR5")

    def test_paper_axes_exported(self):
        assert set(PAPER_TECHNOLOGIES) == {"DDR2-800", "DDR3-1066", "GDDR5"}
        assert tuple(PAPER_WIDTHS) == (1, 2, 4, 8)
        assert set(PAPER_WORKLOADS) == {"hpccg", "lulesh"}


class TestParallelSweep:
    GRID = dict(workloads=["hpccg"], widths=[1, 4],
                technologies=["DDR3-1066", "GDDR5"])

    def test_job_pool_backends_match_serial(self):
        serial = sweep(instructions=200_000, **self.GRID)
        for backend in ("threads", "processes"):
            pooled = sweep(instructions=200_000, backend=backend, jobs=2,
                           **self.GRID)
            assert list(pooled.points) == list(serial.points)
            assert pooled.points == serial.points, backend

    def test_cache_roundtrip(self, tmp_path):
        cold = sweep(instructions=200_000, cache_dir=tmp_path, **self.GRID)
        assert len(list(tmp_path.glob("*.json"))) == 4
        warm = sweep(instructions=200_000, cache_dir=tmp_path, **self.GRID)
        assert warm.points == cold.points

    def test_cache_actually_used(self, tmp_path, monkeypatch):
        """The warm pass must not re-simulate: poison the evaluator."""
        import repro.dse as dse_mod

        sweep(instructions=200_000, cache_dir=tmp_path, **self.GRID)

        def explode(spec):
            raise AssertionError("cache miss: point was re-simulated")

        monkeypatch.setattr(dse_mod, "_sweep_eval", explode)
        warm = sweep(instructions=200_000, cache_dir=tmp_path, **self.GRID)
        assert len(warm.points) == 4

    def test_cache_keys_distinguish_configs(self, tmp_path):
        """Changing graph inputs or the seed must miss the cache."""
        sweep(workloads=["hpccg"], widths=[1], technologies=["GDDR5"],
              instructions=200_000, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1
        sweep(workloads=["hpccg"], widths=[1], technologies=["GDDR5"],
              instructions=300_000, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2
        sweep(workloads=["hpccg"], widths=[1], technologies=["GDDR5"],
              instructions=200_000, seed=2, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_corrupt_cache_entry_reevaluated(self, tmp_path):
        ref = sweep(workloads=["hpccg"], widths=[1], technologies=["GDDR5"],
                    instructions=200_000, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json", encoding="utf-8")
        again = sweep(workloads=["hpccg"], widths=[1],
                      technologies=["GDDR5"], instructions=200_000,
                      cache_dir=tmp_path)
        assert again.points == ref.points
        import json
        json.loads(entry.read_text(encoding="utf-8"))  # rewritten intact
