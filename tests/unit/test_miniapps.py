"""Tests for the skeleton-app engine, the app library and phase models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import build
from repro.core import Params, Simulation
from repro.miniapps import (AllReduce, AppRank, Compute, Exchange,
                            app_runtime_stats, build_app_machine,
                            cache_hit_rates, cores_per_node_efficiency,
                            grid_dims_3d, halo_neighbors_3d,
                            memory_speed_response, phase_runtime,
                            proportional_difference)
from repro.miniapps.base import compute_time_ps


class TestGridMath:
    @given(st.integers(1, 512))
    @settings(max_examples=100)
    def test_grid_dims_cover_n(self, n):
        x, y, z = grid_dims_3d(n)
        assert x * y * z == n
        assert x <= y <= z

    def test_near_cubic(self):
        assert grid_dims_3d(64) == (4, 4, 4)
        assert grid_dims_3d(8) == (2, 2, 2)
        assert grid_dims_3d(27) == (3, 3, 3)

    def test_prime_degenerates_gracefully(self):
        assert grid_dims_3d(7) == (1, 1, 7)

    @given(st.integers(2, 256))
    @settings(max_examples=60)
    def test_halo_neighbors_symmetric(self, n):
        dims = grid_dims_3d(n)
        for rank in range(n):
            for neighbor in halo_neighbors_3d(rank, dims):
                assert rank in halo_neighbors_3d(neighbor, dims), \
                    f"rank {rank} -> {neighbor} not symmetric (dims {dims})"

    @given(st.integers(2, 256))
    @settings(max_examples=40)
    def test_halo_neighbors_valid_and_unique(self, n):
        dims = grid_dims_3d(n)
        for rank in range(min(n, 16)):
            neighbors = halo_neighbors_3d(rank, dims)
            assert len(neighbors) == len(set(neighbors))
            assert rank not in neighbors
            assert all(0 <= x < n for x in neighbors)
            assert len(neighbors) <= 6

    def test_nonperiodic_boundary_has_fewer_neighbors(self):
        dims = (4, 4, 4)
        corner = halo_neighbors_3d(0, dims, periodic=False)
        middle = halo_neighbors_3d(21, dims, periodic=False)  # (1,1,1)
        assert len(corner) == 3
        assert len(middle) == 6


class _TwoPhase(AppRank):
    """Minimal app: compute then ring exchange, twice."""

    def program(self):
        for it in range(self.iterations):
            yield Compute(1000)
            partner = (self.rank + 1) % self.n_ranks
            expect_from = (self.rank - 1) % self.n_ranks
            yield Exchange([(partner, 1024)], expect=1, key=f"ring{it}")
            self.iteration_done()


def _direct_pair_machine(app_cls, n=2, iterations=2, app_params=None):
    """Two ranks wired NIC-to-NIC (no routers)."""
    from repro.network import Nic

    sim = Simulation(seed=8)
    ranks = []
    nics = []
    for i in range(n):
        params = {"rank": i, "n_ranks": n, "iterations": iterations}
        params.update(app_params or {})
        ranks.append(app_cls(sim, f"rank{i}", Params(params)))
        nics.append(Nic(sim, f"nic{i}", Params({})))
        sim.connect(ranks[i], "nic", nics[i], "cpu", latency="1ns")
    sim.connect(nics[0], "net", nics[1], "net", latency="10ns")
    return sim, ranks


class TestEngine:
    def test_two_phase_app_completes(self):
        sim, ranks = _direct_pair_machine(_TwoPhase)
        result = sim.run()
        assert result.reason == "exit"
        for r in ranks:
            assert r.s_iterations.count == 2
            assert r.s_compute.count == 2000
            assert r.s_messages.count == 2

    def test_comm_time_accounted(self):
        sim, ranks = _direct_pair_machine(_TwoPhase)
        sim.run()
        for r in ranks:
            assert r.s_comm.count > 0
            assert r.s_runtime.count >= r.s_compute.count + r.s_comm.count - 1

    def test_rank_validation(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            _TwoPhase(sim, "bad", Params({"rank": 5, "n_ranks": 2}))

    def test_program_must_be_overridden(self):
        sim = Simulation()
        rank = AppRank(sim, "r", Params({"rank": 0, "n_ranks": 1}))
        with pytest.raises(NotImplementedError):
            sim.run()

    def test_early_messages_buffered(self):
        """A rank that is ahead must not lose messages sent to a rank
        still computing."""

        class Skewed(AppRank):
            def program(self):
                if self.rank == 1:
                    yield Compute(500_000)  # rank 1 lags far behind
                partner = 1 - self.rank
                yield Exchange([(partner, 64)], expect=1, key="x")

        sim, ranks = _direct_pair_machine(Skewed, iterations=1)
        result = sim.run()
        assert result.reason == "exit"

    def test_self_send_rejected(self):
        class SelfSend(AppRank):
            def program(self):
                yield Exchange([(self.rank, 64)], expect=1, key="bad")

        sim, _ = _direct_pair_machine(SelfSend, iterations=1)
        with pytest.raises(ValueError, match="self-send"):
            sim.run()


class TestAllReducePlans:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 12, 16, 33])
    def test_allreduce_completes_any_rank_count(self, n):
        class JustReduce(AppRank):
            def program(self):
                yield AllReduce(8, key="ar0")

        from repro.miniapps import build_app_machine as bam
        from repro.core.registry import register, _REGISTRY

        # Register once under a unique name.
        type_name = f"testlib.JustReduce{n}"
        if type_name not in _REGISTRY:
            register(type_name)(JustReduce)
        graph = bam(type_name, n, iterations=1)
        sim = build(graph, seed=2)
        result = sim.run()
        assert result.reason == "exit", f"allreduce deadlocked at n={n}"

    def test_round_keys_match_between_partners(self):
        """Both sides of every pairwise round must derive the same key."""
        from repro.miniapps.base import AppRank

        class Probe(AppRank):
            def program(self):
                return
                yield

        sim = Simulation()
        plans = {}
        for n in (5, 8, 12):
            for rank in range(n):
                probe = Probe(sim, f"p{n}_{rank}",
                              Params({"rank": rank, "n_ranks": n}))
                probe._allreduce_key = "k"
                probe._allreduce_size = 8

                class _Phase:
                    size = 8
                    key = "k"

                plans[(n, rank)] = probe._plan_allreduce(_Phase())
            # Every (label, partner) pair must appear symmetrically.
            for rank in range(n):
                for label, partner in plans[(n, rank)]:
                    assert (label, rank) in plans[(n, partner)], (
                        f"n={n}: round {label} {rank}->{partner} unmatched"
                    )

    def test_single_rank_no_rounds(self):
        class Probe(AppRank):
            def program(self):
                return
                yield

        sim = Simulation()
        probe = Probe(sim, "p", Params({"rank": 0, "n_ranks": 1}))

        class _Phase:
            size = 8
            key = "k"

        assert probe._plan_allreduce(_Phase()) == []


class TestAppLibrary:
    APPS = ["CTH", "SAGE", "XNOBEL", "Charon", "HPCCG", "Lulesh", "MiniFE",
            "CGSolver", "BiCGStabILU", "MLSolver", "MiniMD", "MiniGhost",
            "MiniXyce", "PhdMesh", "MiniDSMC"]

    @pytest.mark.parametrize("app", APPS)
    def test_app_runs_on_machine(self, app):
        graph = build_app_machine(f"miniapps.{app}", 8, iterations=2)
        sim = build(graph, seed=6)
        result = sim.run()
        assert result.reason == "exit", f"{app} did not complete"
        stats = app_runtime_stats(sim, 8)
        assert stats["runtime_ps"] > 0
        assert stats["messages"] > 0

    def test_charon_sends_many_small_messages(self):
        def messages_per_rank(app):
            graph = build_app_machine(f"miniapps.{app}", 8, iterations=2)
            sim = build(graph, seed=6)
            sim.run()
            return app_runtime_stats(sim, 8)["messages_per_rank"]

        assert messages_per_rank("Charon") > 3 * messages_per_rank("CTH")

    def test_ml_sends_more_messages_than_ilu(self):
        """The Fig. 5 mechanism: ML >40% more messages per core."""
        def messages_per_rank(app):
            graph = build_app_machine(f"miniapps.{app}", 16, iterations=3)
            sim = build(graph, seed=6)
            sim.run()
            return app_runtime_stats(sim, 16)["messages_per_rank"]

        ilu = messages_per_rank("BiCGStabILU")
        ml = messages_per_rank("MLSolver")
        assert ml > 1.4 * ilu

    def test_xnobel_overlap_hides_communication(self):
        """With full overlap, moderate bandwidth loss is invisible."""
        def runtime(bw):
            graph = build_app_machine("miniapps.XNOBEL", 16, iterations=2,
                                      injection_bandwidth=bw)
            sim = build(graph, seed=6)
            sim.run()
            return app_runtime_stats(sim, 16)["runtime_ps"]

        assert runtime("1.6GB/s") == pytest.approx(runtime("3.2GB/s"),
                                                   rel=0.02)

    def test_invalid_overlap_fraction(self):
        sim = Simulation()
        from repro.miniapps import HaloApp

        with pytest.raises(ValueError):
            HaloApp(sim, "x", Params({"rank": 0, "n_ranks": 2,
                                      "overlap_fraction": 1.5}))

    def test_invalid_scaling(self):
        sim = Simulation()
        from repro.miniapps import HaloApp

        with pytest.raises(ValueError):
            HaloApp(sim, "x", Params({"rank": 0, "n_ranks": 2,
                                      "scaling": "diagonal"}))

    def test_strong_scaling_shrinks_work(self):
        from repro.miniapps import XNOBEL

        sim = Simulation()
        small = XNOBEL(sim, "a", Params({"rank": 0, "n_ranks": 16}))
        big = XNOBEL(sim, "b", Params({"rank": 0, "n_ranks": 128}))
        assert big.compute_ps < small.compute_ps
        assert big.msg_size < small.msg_size

    def test_minife_phase_stats_separate(self):
        graph = build_app_machine("miniapps.MiniFE", 8, iterations=1)
        sim = build(graph, seed=6)
        sim.run()
        values = sim.stat_values()
        assert values["rank0.fea_ps"] > 0
        assert values["rank0.solver_ps"] > 0


class TestMachineBuilder:
    def test_component_counts(self):
        graph = build_app_machine("miniapps.CTH", 16, locals_per_router=2)
        kinds = {}
        for comp in graph.components():
            kinds[comp.type_name] = kinds.get(comp.type_name, 0) + 1
        assert kinds["miniapps.CTH"] == 16
        assert kinds["network.Nic"] == 16
        assert kinds["network.Router"] == 8

    def test_fattree_variant(self):
        graph = build_app_machine("miniapps.HPCCG", 8, topology="fattree")
        sim = build(graph, seed=1)
        assert sim.run().reason == "exit"

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            build_app_machine("miniapps.CTH", 8, topology="moebius")

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            build_app_machine("miniapps.CTH", 0)


class TestPhaseModels:
    def test_phase_runtime_basic(self):
        result = phase_runtime("minife_solver")
        assert result.runtime_ps > 0
        assert result.n_cores == 1

    def test_solver_contention_sensitive_fea_not(self):
        solver = cores_per_node_efficiency("minife_solver", [1, 8],
                                           channels=4)
        fea = cores_per_node_efficiency("minife_fea", [1, 8], channels=4)
        assert solver[8] < 0.7  # solver hurt by sharing
        assert fea[8] > 0.85  # FEA barely affected

    def test_minife_tracks_charon_on_contention(self):
        """The Fig. 2 pass verdict: within ~13%."""
        cores = [1, 2, 4, 8, 12]
        minife = cores_per_node_efficiency("minife_solver", cores, channels=4)
        charon = cores_per_node_efficiency("charon_solver", cores, channels=4)
        diffs = proportional_difference(minife, charon)
        assert max(diffs.values()) < 0.13

    def test_memory_speed_moves_solver_not_fea(self):
        techs = ["DDR3-800", "DDR3-1066", "DDR3-1333"]
        solver = memory_speed_response("minife_solver", techs)
        fea = memory_speed_response("minife_fea", techs)
        assert solver["DDR3-800"] > 1.2
        assert fea["DDR3-800"] < 1.08
        assert solver["DDR3-1333"] == 1.0

    def test_minife_tracks_charon_on_memory_speed(self):
        """The Fig. 3 pass verdict: within ~4% (we allow 8%)."""
        techs = ["DDR3-800", "DDR3-1066", "DDR3-1333"]
        minife = memory_speed_response("minife_solver", techs)
        charon = memory_speed_response("charon_solver", techs)
        diffs = proportional_difference(minife, charon)
        assert max(diffs.values()) < 0.08

    def test_cache_hit_rates_fig4_shape(self):
        minife = cache_hit_rates("minife_fea", n_refs=40_000, warmup=80_000)
        charon = cache_hit_rates("charon_fea", n_refs=40_000, warmup=80_000)
        # L1 matches closely; L2/L3 diverge strongly (the fail verdict).
        assert abs(minife["L1"] - charon["L1"]) / charon["L1"] < 0.05
        assert minife["L2"] > 2 * charon["L2"]
        assert minife["L3"] > 1.5 * charon["L3"]

    def test_compute_time_helper(self):
        t1 = compute_time_ps("hpccg", 100_000)
        t2 = compute_time_ps("hpccg", 100_000, n_sharers=8)
        assert t2 > t1

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            phase_runtime("hpccg", n_cores=0)
