"""Tests for the live observability plane (repro.obs.live).

Covers the seqlock segment protocol, the registry's OpenMetrics/JSON
rendering, LiveMetrics publishing on every execution backend, the HTTP
endpoint, ``obs top``, the stall watchdog (synthetic snapshots and a
real injected stall on the processes backend) and the ``dse.sweep``
fleet segment.
"""

import io
import json
import os
import struct
import time
import urllib.request

import pytest

from repro.__main__ import main
from repro.config import build_parallel, save
from repro.core import Component, ParallelSimulation, Params, Simulation
from repro.core.simulation import SimulationError
from repro.obs import TelemetryRecorder
from repro.obs.live import (KIND_RUN, STATE_DONE, STATE_RUNNING,
                            STATE_WAITING, LiveMetrics, LiveSegment,
                            LiveView, MetricsRegistry, MetricsServer,
                            RankSlotWriter, SegmentError, StallWatchdog,
                            SweepLive, default_segment_path, eta_seconds,
                            make_run_render, make_sweep_render,
                            parse_address, resolve_segment, run_top,
                            straggler, sweep_status)
from repro.obs.live.segment import RANK_SLOT_SIZE, run_slot_size
from repro.obs.live.sweep import (POINT_DONE, POINT_FAILED, POINT_RUNNING,
                                  render_sweep_openmetrics)
from tests.unit.test_rank_obs import traffic_graph


class _FakeSim:
    """Just enough Simulation surface for a RankSlotWriter."""

    def __init__(self, events=0, queued=0, now=0):
        self._events_executed = events
        self._queue = [None] * queued
        self.now = now


def make_segment(tmp_path, *, ranks=2, limit_ps=0, name="seg.live"):
    path = tmp_path / name
    seg = LiveSegment.create(path, kind=KIND_RUN, slots=ranks,
                             slot_size=RANK_SLOT_SIZE,
                             run_size=run_slot_size(ranks),
                             backend="serial", mode="parallel",
                             limit_ps=limit_ps)
    return path, seg


class TestSegment:
    def test_rank_slot_roundtrip(self, tmp_path):
        path, seg = make_segment(tmp_path)
        sim = _FakeSim(events=123, queued=7, now=4_500)
        writer = RankSlotWriter(seg, 0, sim)
        writer.record_step(0.003)   # second histogram bucket (<= 0.005)
        writer.record_step(42.0)    # overflow bucket
        writer.publish(STATE_RUNNING)
        view = LiveView(path)
        slot = view.read_rank(0)
        view.close()
        seg.close()
        assert slot["pid"] == os.getpid()
        assert slot["state"] == STATE_RUNNING
        assert slot["state_name"] == "run"
        assert slot["events"] == 123
        assert slot["queued"] == 7
        assert slot["sim_ps"] == 4_500
        assert slot["epoch"] == 2
        assert slot["hist"][1] == 1 and slot["hist"][-1] == 1
        assert slot["busy_s"] == pytest.approx(42.003)

    def test_unwritten_slot_reads_as_zeroed_init(self, tmp_path):
        path, seg = make_segment(tmp_path)
        view = LiveView(path)
        slot = view.read_rank(1)
        view.close()
        seg.close()
        assert slot["state_name"] == "init"
        assert slot["events"] == 0 and slot["pid"] == 0

    def test_torn_slot_skipped_by_reader(self, tmp_path):
        path, seg = make_segment(tmp_path)
        # Fake a writer dying mid-update: odd sequence counter.
        off = 128 + 1 * RANK_SLOT_SIZE
        struct.pack_into("<Q", seg._mm, off, 3)
        view = LiveView(path)
        assert view.read_rank(1) is None
        snapshot = view.snapshot()
        view.close()
        seg.close()
        assert snapshot["ranks"][1] is None
        assert snapshot["ranks"][0] is not None or True  # rank 0 intact

    def test_run_slot_roundtrip(self, tmp_path):
        path, seg = make_segment(tmp_path, limit_ps=1_000_000)
        seg.write_run(state=STATE_RUNNING, epoch=9, events=5_000,
                      exchanged=40, now_ps=250_000, limit_ps=1_000_000,
                      mono_s=10.0, unix_s=time.time(), start_mono=2.0,
                      exchange_s=0.5, exec_s=6.0, reason="",
                      barrier_s=[1.5, 2.5])
        view = LiveView(path)
        run = view.read_run()
        view.close()
        seg.close()
        assert run["epoch"] == 9
        assert run["events"] == 5_000
        assert run["now_ps"] == 250_000
        assert run["limit_ps"] == 1_000_000
        assert run["barrier_s"] == [1.5, 2.5]
        # ETA: 25% of sim time in 8 wall seconds -> ~24s remaining.
        assert eta_seconds(run) == pytest.approx(24.0)

    def test_eta_needs_a_limit(self):
        assert eta_seconds({"limit_ps": 0, "now_ps": 10,
                            "start_mono": 0.0, "mono_s": 1.0}) is None

    def test_view_rejects_non_segment(self, tmp_path):
        bogus = tmp_path / "bogus.live"
        bogus.write_bytes(b"not a segment, definitely" * 20)
        with pytest.raises(SegmentError):
            LiveView(bogus)
        with pytest.raises(SegmentError):
            LiveSegment.open(bogus)

    def test_view_rejects_missing_file(self, tmp_path):
        with pytest.raises(SegmentError):
            LiveView(tmp_path / "nope.live")

    def test_resolve_segment_forms(self, tmp_path):
        path, seg = make_segment(tmp_path, name="m.jsonl.live")
        seg.close()
        # By segment path, by metrics sibling, by directory (newest).
        assert resolve_segment(path) == path
        assert resolve_segment(tmp_path / "m.jsonl") == path
        assert resolve_segment(tmp_path) == path
        assert default_segment_path("x/m.jsonl").name == "m.jsonl.live"
        with pytest.raises(SegmentError):
            resolve_segment(tmp_path / "other.jsonl")


class TestRegistry:
    def _snapshot(self, tmp_path):
        path, seg = make_segment(tmp_path, limit_ps=2_000_000)
        writer = RankSlotWriter(seg, 0, _FakeSim(events=10, queued=3,
                                                 now=1_000_000))
        writer.record_step(0.0005)
        writer.publish(STATE_WAITING)
        seg.write_run(state=STATE_RUNNING, epoch=4, events=10, exchanged=2,
                      now_ps=1_000_000, limit_ps=2_000_000, mono_s=5.0,
                      unix_s=time.time(), start_mono=1.0, exchange_s=0.1,
                      exec_s=0.4, reason="", barrier_s=[0.2, 0.3])
        view = LiveView(path)
        snapshot = view.snapshot()
        view.close()
        seg.close()
        return snapshot

    def test_openmetrics_exposition(self, tmp_path):
        text = MetricsRegistry().render_openmetrics(self._snapshot(tmp_path))
        assert "# TYPE repro_rank_events counter" in text
        assert 'repro_rank_events_total{rank="0"} 10' in text
        assert 'repro_rank_queue_depth{rank="0"} 3' in text
        assert 'repro_rank_barrier_seconds_total{rank="1"} 0.3' in text
        assert 'repro_rank_step_seconds_bucket{rank="0",le="0.001"} 1' in text
        assert 'repro_rank_step_seconds_bucket{rank="0",le="+Inf"} 1' in text
        assert "repro_run_events_total 10" in text
        assert text.endswith("# EOF\n")

    def test_status_document(self, tmp_path):
        doc = MetricsRegistry().status(self._snapshot(tmp_path))
        assert doc["backend"] == "serial"
        assert doc["ranks"] == 2
        assert doc["per_rank"][0]["events"] == 10
        assert doc["run"]["epoch"] == 4
        # Half the sim budget in 4 wall seconds -> ~4s to go.
        assert doc["run"]["eta_s"] == pytest.approx(4.0)


class TestLiveMetricsSequential:
    def test_sequential_run_publishes_and_finalizes(self, tmp_path):
        from tests.conftest import PingPong

        sim = Simulation(seed=1)
        a = PingPong(sim, "a", Params({"initiator": True,
                                       "n_round_trips": 50}))
        b = PingPong(sim, "b")
        sim.connect(a, "io", b, "io", latency="5ns")
        seg_path = tmp_path / "seq.live"
        live = LiveMetrics(seg_path, interval_s=0.05).attach(sim)
        result = sim.run()
        live.finalize(result)
        view = LiveView(seg_path)
        snapshot = view.snapshot()
        view.close()
        slot = snapshot["ranks"][0]
        assert slot["state"] == STATE_DONE
        assert slot["events"] == result.events_executed
        run = snapshot["run"]
        assert run["state"] == STATE_DONE
        assert run["events"] == result.events_executed
        assert run["reason"] == result.reason
        # The publisher detached: the hot-path slot is clear again.
        assert sim._live_publisher is None

    def test_double_attach_rejected(self, tmp_path):
        sim = Simulation(seed=1)
        live = LiveMetrics(tmp_path / "x.live").attach(sim)
        with pytest.raises(RuntimeError):
            live.attach(sim)
        live.detach()


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
class TestLiveMetricsParallel:
    def test_per_rank_slots_match_run(self, tmp_path, backend):
        psim = build_parallel(traffic_graph(), 2, strategy="round_robin",
                              seed=9, backend=backend)
        seg_path = tmp_path / "par.live"
        live = LiveMetrics(seg_path, interval_s=0.05).attach(psim)
        result = psim.run()
        live.finalize(result)
        view = LiveView(seg_path)
        snapshot = view.snapshot()
        view.close()
        ranks = snapshot["ranks"]
        assert all(s is not None for s in ranks)
        assert sum(s["events"] for s in ranks) == result.events_executed
        assert all(s["state"] == STATE_DONE for s in ranks)
        assert all(s["epoch"] > 0 for s in ranks)
        if backend == "processes":
            # Workers own their slots across the fork boundary.
            assert all(s["pid"] != os.getpid() for s in ranks)
        else:
            assert all(s["pid"] == os.getpid() for s in ranks)
        run = snapshot["run"]
        assert run["state"] == STATE_DONE
        assert run["events"] == result.events_executed
        assert len(run["barrier_s"]) == 2

    def test_manifest_records_live_segment(self, tmp_path, backend):
        psim = build_parallel(traffic_graph(), 2, strategy="round_robin",
                              seed=9, backend=backend)
        metrics = tmp_path / "m.jsonl"
        telemetry = TelemetryRecorder(metrics).attach(psim)
        live = LiveMetrics(default_segment_path(metrics)).attach(psim)
        result = psim.run()
        live.finalize(result)
        manifest = telemetry.finalize(result)
        assert manifest["telemetry"]["live_segment"] == str(
            default_segment_path(metrics))


class TestServer:
    def test_parse_address(self):
        assert parse_address(":8080") == ("127.0.0.1", 8080)
        assert parse_address("8080") == ("127.0.0.1", 8080)
        assert parse_address("0.0.0.0:9") == ("0.0.0.0", 9)
        with pytest.raises(ValueError):
            parse_address("nope")

    def test_scrape_endpoints(self, tmp_path):
        path, seg = make_segment(tmp_path)
        RankSlotWriter(seg, 0, _FakeSim(events=77)).publish(STATE_RUNNING)
        seg.write_run(state=STATE_RUNNING, epoch=1, events=77, exchanged=0,
                      now_ps=10, limit_ps=0, mono_s=1.0, unix_s=time.time(),
                      start_mono=0.0, exchange_s=0.0, exec_s=0.0,
                      reason="", barrier_s=[0.0, 0.0])
        server = MetricsServer(("127.0.0.1", 0), make_run_render(path))
        server.start()
        try:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.headers["Content-Type"].startswith(
                    "application/openmetrics-text")
                text = resp.read().decode()
            assert 'repro_rank_events_total{rank="0"} 77' in text
            with urllib.request.urlopen(server.url + "/status") as resp:
                doc = json.loads(resp.read())
            assert doc["per_rank"][0]["events"] == 77
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/bogus")
            assert err.value.code == 404
        finally:
            server.stop()
            seg.close()

    def test_missing_segment_serves_placeholder(self, tmp_path):
        server = MetricsServer(("127.0.0.1", 0),
                               make_run_render(tmp_path / "later.live"))
        server.start()
        try:
            with urllib.request.urlopen(server.url + "/status") as resp:
                doc = json.loads(resp.read())
            assert doc["state"] == "pending"
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.read().decode() == "# EOF\n"
        finally:
            server.stop()


class TestTop:
    def _finished_segment(self, tmp_path):
        psim = build_parallel(traffic_graph(), 2, strategy="round_robin",
                              seed=9, backend="serial")
        seg_path = tmp_path / "top.live"
        live = LiveMetrics(seg_path).attach(psim)
        result = psim.run()
        live.finalize(result)
        return seg_path, result

    def test_run_top_once(self, tmp_path):
        seg_path, result = self._finished_segment(tmp_path)
        out = io.StringIO()
        assert run_top(str(seg_path), once=True, stream=out) == 0
        text = out.getvalue()
        assert "backend=serial" in text
        assert "rank" in text and "ev/s" in text
        assert "state=done" in text

    def test_top_stops_when_run_finishes(self, tmp_path):
        seg_path, _ = self._finished_segment(tmp_path)
        out = io.StringIO()
        # Not --once: the done run-state must break the refresh loop.
        assert run_top(str(seg_path), interval_s=0.01, stream=out) == 0

    def test_straggler_prefers_busy_delta(self):
        def snap(busy0, busy1, mono):
            return {"mono_now": mono, "header": {"backend": "x"},
                    "ranks": [
                        {"rank": 0, "busy_s": busy0, "events": 0},
                        {"rank": 1, "busy_s": busy1, "events": 0}]}

        first = snap(5.0, 1.0, 0.0)
        # Cumulative busy says rank 0; the recent window says rank 1.
        assert straggler(first, None) == 0
        assert straggler(snap(5.1, 3.0, 1.0), first) == 1

    def test_obs_top_cli(self, tmp_path, capsys):
        seg_path, _ = self._finished_segment(tmp_path)
        assert main(["obs", "top", str(seg_path), "--once"]) == 0
        assert "rank" in capsys.readouterr().out

    def test_obs_top_cli_missing_segment(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "no.live"),
                     "--once"]) == 1
        assert "error:" in capsys.readouterr().err


class _Recorder:
    def __init__(self):
        self.records = []

    def emit_record(self, record):
        self.records.append(record)


class TestWatchdog:
    def _snapshot(self, *, events, age_s, state=STATE_RUNNING, mono=0.0,
                  pid=None):
        return {
            "mono_now": mono,
            "ranks": [{
                "rank": 0, "pid": pid if pid is not None else os.getpid(),
                "state": state,
                "state_name": {1: "run", 2: "wait", 3: "done"}.get(state,
                                                                   "init"),
                "events": events, "sim_ps": events, "epoch": 1,
                "age_s": age_s, "busy_s": 0.0,
            }],
            "run": None,
        }

    def test_progress_stall_detected_once(self, tmp_path):
        recorder = _Recorder()
        wd = StallWatchdog(tmp_path / "w.live", threshold_s=1.0,
                           telemetry=recorder, stream=io.StringIO())
        assert wd.check(self._snapshot(events=10, age_s=0.0, mono=0.0)) == []
        # Same progress triple 2s later: stalled (and reported once).
        fresh = wd.check(self._snapshot(events=10, age_s=0.1, mono=2.0))
        assert len(fresh) == 1
        stall = fresh[0]
        assert stall["rank"] == 0 and not stall["worker_silent"]
        assert stall["progress_age_s"] == pytest.approx(2.0)
        # Own-pid stall: the dump is taken directly via faulthandler.
        assert stall["stack_dump"] is not None
        assert "check" in open(stall["stack_dump"]).read()
        assert wd.check(self._snapshot(events=10, age_s=0.2, mono=3.0)) == []
        assert recorder.records[0]["kind"] == "obs.stall"

    def test_progress_clears_the_flag(self, tmp_path):
        wd = StallWatchdog(tmp_path / "w.live", threshold_s=1.0,
                           stream=io.StringIO())
        wd.check(self._snapshot(events=10, age_s=0.0, mono=0.0))
        wd.check(self._snapshot(events=10, age_s=0.1, mono=2.0))
        # Progress resumed, then froze again: a second episode reports.
        wd.check(self._snapshot(events=20, age_s=0.1, mono=2.5))
        fresh = wd.check(self._snapshot(events=20, age_s=0.1, mono=5.0))
        assert len(fresh) == 1
        assert len(wd.stalls) == 2

    def test_silent_worker_flagged_without_dump(self, tmp_path):
        wd = StallWatchdog(tmp_path / "w.live", threshold_s=1.0,
                           stream=io.StringIO())
        wd.check(self._snapshot(events=5, age_s=0.0, state=STATE_WAITING,
                                mono=0.0))
        fresh = wd.check(self._snapshot(events=5, age_s=9.0,
                                        state=STATE_WAITING, mono=9.0))
        assert len(fresh) == 1
        assert fresh[0]["worker_silent"] is True
        assert fresh[0]["stack_dump"] is None

    def test_done_rank_never_stalls(self, tmp_path):
        wd = StallWatchdog(tmp_path / "w.live", threshold_s=1.0,
                           stream=io.StringIO())
        wd.check(self._snapshot(events=5, age_s=0.0, state=STATE_DONE,
                                mono=0.0))
        assert wd.check(self._snapshot(events=5, age_s=50.0,
                                       state=STATE_DONE, mono=50.0)) == []

    def test_injected_stall_on_processes_backend(self, tmp_path):
        """The acceptance scenario: a wedged worker is detected, its
        stack is dumped from across the process boundary, and abort
        fails the run instead of hanging it."""

        class Ticker(Component):
            def setup(self):
                self.wedge = bool(self.params.get("wedge", False))
                self.schedule(10_000, self.tick)

            def tick(self, payload=None):
                if self.wedge and self.sim.now > 2_000_000:
                    time.sleep(30)  # the injected stall
                self.schedule(10_000, self.tick)

        psim = ParallelSimulation(num_ranks=2, backend="processes")
        for rank in range(2):
            Ticker(psim.rank_sim(rank), f"t{rank}",
                   Params({"wedge": rank == 1}))
        seg_path = tmp_path / "stall.live"
        recorder = _Recorder()
        live = LiveMetrics(seg_path, interval_s=0.05,
                           watchdog_dumps=True).attach(psim)
        wd = StallWatchdog(seg_path, threshold_s=0.6, abort=True,
                           telemetry=recorder, target=psim,
                           stream=io.StringIO()).start()
        with pytest.raises(SimulationError):
            psim.run(max_time="1ms")
        wd.stop()
        live.finalize()
        assert len(wd.stalls) >= 1
        stall = wd.stalls[0]
        assert stall["rank"] == 1
        assert stall["aborted"] is True
        assert stall["worker_silent"] is False
        # The cross-process faulthandler dump names the wedged handler.
        dump = open(stall["stack_dump"]).read()
        assert "in tick" in dump
        assert any(r["kind"] == "obs.stall" for r in recorder.records)


class TestSweepLive:
    def test_fleet_lifecycle_and_status(self, tmp_path):
        path = tmp_path / "fleet.live"
        fleet = SweepLive.create(path, 3)
        start = fleet.mark_running(0)
        time.sleep(0.01)
        fleet.mark_done(0, start)
        fleet.mark_running(1)
        fleet.mark_done(2, fleet.mark_running(2), failed=True)
        view = LiveView(path)
        status = sweep_status(view)
        text = render_sweep_openmetrics(view)
        view.close()
        fleet.close()
        assert status["total"] == 3
        assert status["completed"] == 1
        assert status["running"] == 1
        assert status["failed"] == 1
        assert status["point_seconds_sum"] > 0
        assert 'repro_sweep_points{state="completed"} 1' in text
        assert text.endswith("# EOF\n")

    def test_sweep_render_tolerates_missing_segment(self, tmp_path):
        render = make_sweep_render(tmp_path / "later.live")
        status, text = render()
        assert status["state"] == "pending"
        assert text == "# EOF\n"

    def test_dse_sweep_populates_fleet_segment(self, tmp_path):
        from repro.dse import sweep

        path = tmp_path / "sweep.live"
        result = sweep(workloads=["hpccg"], widths=[1, 4],
                       technologies=["DDR3-1333"], instructions=100_000,
                       live_path=path)
        assert len(result.points) == 2
        view = LiveView(path)
        status = sweep_status(view.snapshot())
        view.close()
        assert status["total"] == 2
        assert status["completed"] == 2
        assert status["failed"] == 0
        assert status["eta_s"] == pytest.approx(0.0)


class TestCliRunFlags:
    def test_run_with_live_flags_end_to_end(self, tmp_path, capsys):
        config = tmp_path / "machine.json"
        save(traffic_graph(), config)
        metrics = tmp_path / "m.jsonl"
        assert main(["run", str(config), "--ranks", "2",
                     "--metrics", str(metrics),
                     "--serve-metrics", "127.0.0.1:0",
                     "--watchdog", "30"]) == 0
        out = capsys.readouterr().out
        assert f"live segment -> {metrics}.live" in out
        assert "serving metrics on http://127.0.0.1:" in out
        seg = default_segment_path(metrics)
        assert seg.is_file()
        view = LiveView(seg)
        assert view.read_run()["state"] == STATE_DONE
        view.close()
        # The manifest advertises the segment; obs report surfaces it.
        assert main(["obs", "report", str(metrics)]) == 0
        assert f"live segment: {seg}" in capsys.readouterr().out
