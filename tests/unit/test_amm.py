"""Unit tests for the Abstract Machine Model layer (paper §5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import (LogPParams, MachineModel, fit_from_simulation,
                       predict_allreduce_ps, predict_compute_ps,
                       predict_exchange_ps, predict_halo_app_iteration_ps)


class TestLogP:
    def test_message_time_composition(self):
        logp = LogPParams(L=1000, o=500, g=500, G=1.0, P=4)
        assert logp.message_time(100) == 2 * 500 + 1000 + 100

    def test_validation(self):
        with pytest.raises(ValueError):
            LogPParams(L=-1, o=0, g=0, G=0, P=1)
        with pytest.raises(ValueError):
            LogPParams(L=0, o=0, g=0, G=0, P=0)

    @given(st.integers(0, 1 << 22))
    @settings(max_examples=40)
    def test_message_time_monotone(self, nbytes):
        logp = LogPParams(L=1000, o=500, g=500, G=0.3, P=4)
        assert logp.message_time(nbytes + 64) >= logp.message_time(nbytes)


class TestMachineModel:
    def test_from_strings(self):
        m = MachineModel.from_strings(injection_bandwidth="1.6GB/s",
                                      link_latency="40ns")
        assert m.injection_bandwidth == 1.6e9
        assert m.link_latency_ps == 40_000

    def test_to_logp_projection(self):
        m = MachineModel(link_latency_ps=20_000, hops_estimate=3.0,
                         hop_latency_ps=10_000, send_overhead_ps=500_000,
                         recv_overhead_ps=300_000,
                         injection_bandwidth=3.2e9)
        logp = m.to_logp()
        assert logp.L == 20_000 + 30_000
        assert logp.o == 400_000
        assert logp.G == pytest.approx(1e12 / 3.2e9)
        assert logp.P == m.n_nodes * m.cores_per_node

    def test_evolve_is_nondestructive(self):
        m = MachineModel()
        m2 = m.evolve(injection_bandwidth=1.0e9)
        assert m.injection_bandwidth != m2.injection_bandwidth
        assert m2.link_latency_ps == m.link_latency_ps


class TestPredictors:
    def test_compute_matches_core_model(self):
        m = MachineModel(issue_width=4, memory_technology="DDR3-1333")
        t1 = predict_compute_ps(m, "hpccg", 1_000_000)
        t8 = predict_compute_ps(m, "hpccg", 1_000_000, n_sharers=8)
        assert t8 > t1 > 0

    def test_exchange_scales_with_size_and_count(self):
        m = MachineModel()
        small = predict_exchange_ps(m, 6, 1024)
        big = predict_exchange_ps(m, 6, 1 << 20)
        more = predict_exchange_ps(m, 6, 1024, msgs_per_neighbor=8)
        assert big > small
        assert more > small
        assert predict_exchange_ps(m, 0, 1024) == 0

    def test_allreduce_log_scaling(self):
        m = MachineModel()
        t4 = predict_allreduce_ps(m, 4)
        t16 = predict_allreduce_ps(m, 16)
        t17 = predict_allreduce_ps(m, 17)
        assert t16 == 2 * t4  # log2: 2 rounds -> 4 rounds
        assert t17 > t16  # non-power-of-two needs an extra round
        assert predict_allreduce_ps(m, 1) == 0

    def test_overlap_hides_exchange(self):
        m = MachineModel()
        kwargs = dict(n_ranks=16, n_neighbors=6, msg_size=65536,
                      msgs_per_neighbor=1, compute_ps=10**9)
        blocking = predict_halo_app_iteration_ps(m, overlap_fraction=0.0,
                                                 **kwargs)
        overlapped = predict_halo_app_iteration_ps(m, overlap_fraction=1.0,
                                                   **kwargs)
        assert overlapped < blocking
        # Fully overlapped and compute-dominated: iteration ~= compute.
        assert overlapped == pytest.approx(10**9, rel=0.01)


class TestFit:
    def test_fit_recovers_effective_network(self):
        nominal = MachineModel()
        fitted = fit_from_simulation(nominal)
        # Effective end-to-end rate = inject and eject in series: bw/2.
        assert fitted.injection_bandwidth == pytest.approx(
            nominal.injection_bandwidth / 2, rel=0.05)
        # Latency ~ wire latency (plus the 1ns port links).
        assert fitted.link_latency_ps == pytest.approx(
            nominal.link_latency_ps, rel=0.2)

    def test_fitted_model_predicts_probe_sizes(self):
        """The evolve loop closes: the fitted model's point-to-point
        prediction matches a fresh simulated measurement."""
        from repro.core import Params, Simulation
        from repro.network import Nic, PatternEndpoint

        nominal = MachineModel()
        fitted = fit_from_simulation(nominal)
        size = 262_144  # a size NOT in the probe set

        sim = Simulation(seed=9)
        src = PatternEndpoint(sim, "src", Params({
            "endpoint_id": 0, "n_endpoints": 2, "pattern": "neighbor",
            "count": 1, "size": size, "gap": "1us", "expected": 0}))
        dst = PatternEndpoint(sim, "dst", Params({
            "endpoint_id": 1, "n_endpoints": 2, "count": 0, "expected": 1}))
        nic_kwargs = {"injection_bandwidth": nominal.injection_bandwidth,
                      "send_overhead": nominal.send_overhead_ps,
                      "recv_overhead": nominal.recv_overhead_ps}
        nic_s = Nic(sim, "nic_s", Params(nic_kwargs))
        nic_d = Nic(sim, "nic_d", Params(nic_kwargs))
        sim.connect(src, "nic", nic_s, "cpu", latency="1ns")
        sim.connect(dst, "nic", nic_d, "cpu", latency="1ns")
        sim.connect(nic_s, "net", nic_d, "net",
                    latency=nominal.link_latency_ps)
        sim.run()
        measured = sim.stats()["dst.latency_ps"].mean
        predicted = fitted.to_logp().message_time(size)
        assert predicted == pytest.approx(measured, rel=0.05)
