"""Tests for causal event tracing and critical-path analysis (PR 8).

The load-bearing contracts:

* capture is **opt-in** — an untraced run never compiles the
  instrumented dispatcher and never writes a shard, and a closed tracer
  leaves the engine (and the event-record pool) exactly as it found it;
* node ids ``(rank, seq)`` ride the determinism contract, so the
  critical path reported from the per-rank shards is **identical across
  execution backends** — including processes, where causality has to be
  stitched back together from ``(src_rank, send_seq)`` link rows;
* the cut-edge ranking is deterministic run to run.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ConfigGraph, build, build_parallel
from repro.core import Component, Simulation
from repro.core.backends import BACKENDS
from repro.core.event import _RECORD_POOL, acquire_record, release_record
from repro.obs import CausalCapture
from repro.obs.causal import CausalTracer, causal_shard_path, find_causal_shards
from repro.obs.critpath import (CausalAnalysisError, analyze, critical_path,
                                cut_edge_report, load_causal)

ALL_BACKENDS = sorted(BACKENDS)


def crossed_graph(rounds=20, ticks=30) -> ConfigGraph:
    """Cross-rank traffic under round_robin: ping/rank0 <-> pong/rank1."""
    graph = ConfigGraph("causal-test")
    graph.component("ping", "testlib.PingPong",
                    {"initiator": True, "n_round_trips": rounds})
    graph.component("pong", "testlib.PingPong", {})
    graph.link("ping", "io", "pong", "io", latency="3ns")
    for i in range(4):
        graph.component(f"clk{i}", "testlib.Clocked",
                        {"clock": "1GHz", "n_ticks": ticks})
    return graph


def traced_parallel_run(tmp_path, backend, *, name=None, seed=7):
    """One 2-rank captured run; returns the shard base path."""
    base = tmp_path / (name or f"{backend}.jsonl")
    psim = build_parallel(crossed_graph(), 2, strategy="round_robin",
                          seed=seed, backend=backend)
    capture = CausalCapture(base)
    capture.attach(psim)
    psim.run()
    capture.close()
    psim.close()
    return base


def path_key(path):
    """The acceptance identity: the ordered node-id sequence."""
    return [(n["time_ps"], n["priority"], n["seq"], n["rank"])
            for n in path.nodes]


class TestCaptureLifecycle:
    def test_off_by_default(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        sim.run()
        assert sim._instr is None
        assert sim._causal is None
        assert find_causal_shards(tmp_path / "m.jsonl") == {}

    def test_close_restores_bare_engine(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=5)
        queue_before = sim._queue
        capture = CausalCapture(tmp_path / "m.jsonl")
        capture.attach(sim)
        assert sim._causal is not None
        sim.run()
        capture.close()
        assert sim._causal is None
        assert sim._instr is None
        assert sim._queue is queue_before

    def test_released_records_never_leak_provenance(self):
        record = acquire_record(10, 0, 1, None, None)
        record.cause = 42
        release_record(record)
        assert all(r.cause is None for r in _RECORD_POOL)

    def test_shard_schema_and_batching(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=8)
        capture = CausalCapture(tmp_path / "m.jsonl")
        capture.attach(sim)
        result = sim.run()
        capture.close()
        shard = causal_shard_path(tmp_path / "m.jsonl", 0)
        records = [json.loads(line) for line in
                   shard.read_text().splitlines()]
        assert records[0]["kind"] == "causal_start"
        assert records[0]["schema"] == "repro-causal/1"
        assert records[-1]["kind"] == "causal_end"
        nodes = sum(len(r["rows"]) for r in records
                    if r["kind"] == "causal_nodes")
        assert nodes == records[-1]["nodes"] == result.events_executed


class TestSequentialCausality:
    def test_chain_and_roots(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=10)
        capture = CausalCapture(tmp_path / "m.jsonl")
        capture.attach(sim)
        sim.run()
        capture.close()
        graph = load_causal(tmp_path / "m.jsonl")
        causes = {seq: row[2] for (_, seq), row in graph.nodes.items()}
        roots = [seq for seq, cause in causes.items() if cause is None]
        # The setup() serve is the only root; every later token was
        # scheduled from the handler of the one before it.
        assert roots == [0]
        assert all(causes[seq] == seq - 1 for seq in causes if seq > 0)

    def test_component_attribution(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        make_pingpong(sim, n=6)
        capture = CausalCapture(tmp_path / "m.jsonl")
        capture.attach(sim)
        sim.run()
        capture.close()
        path = analyze(tmp_path / "m.jsonl")
        assert set(path.by_class) == {"PingPong"}
        names = {n["component"] for n in path.nodes}
        assert names == {"ping", "pong"}

    def test_component_anchor(self, tmp_path, make_pingpong):
        sim = Simulation(seed=1)
        ping, pong = make_pingpong(sim, n=6)
        capture = CausalCapture(tmp_path / "m.jsonl")
        capture.attach(sim)
        sim.run()
        capture.close()
        path = analyze(tmp_path / "m.jsonl", component="pong")
        assert path.anchor == "component:pong"
        assert path.nodes[-1]["component"] == "pong"
        with pytest.raises(CausalAnalysisError):
            analyze(tmp_path / "m.jsonl", component="no-such-component")


class TestCrossBackendIdentity:
    def test_critical_path_identical_across_backends(self, tmp_path):
        """PR 8 acceptance: the processes backend reproduces the serial
        backend's critical path node for node, and the cut-edge ranking
        matches too."""
        paths = {backend: analyze(traced_parallel_run(tmp_path, backend))
                 for backend in ALL_BACKENDS}
        reference = paths["serial"]
        assert len(reference.nodes) > 10
        for backend in ALL_BACKENDS:
            assert path_key(paths[backend]) == path_key(reference), backend
            assert paths[backend].cut_edges == reference.cut_edges, backend
            assert paths[backend].by_class == reference.by_class, backend

    def test_cut_edges_cross_ranks(self, tmp_path):
        path = analyze(traced_parallel_run(tmp_path, "serial"))
        assert len(path.cut_edges) == 1
        edge = path.cut_edges[0]
        assert edge["name"] == "ping.io--pong.io"
        assert {edge["rank_a"], edge["rank_b"]} == {0, 1}
        assert edge["crossings"] > 10
        assert edge["weight_ps"] > 0
        # Path nodes mark the same hops the edge aggregates.
        cuts = sum(1 for n in path.nodes if n["via_link"] is not None)
        assert cuts == edge["crossings"]
        assert cut_edge_report(path) == path.cut_edges

    def test_cut_edge_ranking_deterministic(self, tmp_path):
        first = analyze(traced_parallel_run(tmp_path, "processes",
                                            name="a.jsonl"))
        second = analyze(traced_parallel_run(tmp_path, "processes",
                                             name="b.jsonl"))
        assert first.cut_edges == second.cut_edges
        assert path_key(first) == path_key(second)

    def test_recv_rows_join_send_rows(self, tmp_path):
        graph = load_causal(traced_parallel_run(tmp_path, "serial"))
        assert graph.ranks == [0, 1]
        assert graph.recvs and graph.sends
        for (rank, _seq), (link_id, send_seq) in graph.recvs.items():
            link = graph.links[link_id]
            src = link["rank_b"] if rank == link["rank_a"] else link["rank_a"]
            assert (src, send_seq) in graph.sends


class TestAnalyzerErrors:
    def test_missing_shards(self, tmp_path):
        with pytest.raises(CausalAnalysisError, match="trace-causal"):
            load_causal(tmp_path / "never-ran.jsonl")

    def test_truncated_shard_tail_tolerated(self, tmp_path):
        base = traced_parallel_run(tmp_path, "serial")
        shard = causal_shard_path(base, 1)
        text = shard.read_text()
        shard.write_text(text[: int(len(text) * 0.8)])
        graph = load_causal(base)  # no raise; partial rank 1
        assert graph.nodes
        path = critical_path(graph)
        assert path.nodes

    def test_as_dict_roundtrips_json(self, tmp_path):
        path = analyze(traced_parallel_run(tmp_path, "serial"))
        payload = json.loads(json.dumps(path.as_dict()))
        assert payload["schema"] == "repro-critpath/1"
        assert payload["length"] == len(path.nodes)
        assert payload["cut_edges"] == path.cut_edges
        assert path.render(top=5)


class TestSequentialBuildPath:
    def test_build_and_capture_matches_two_rank_span(self, tmp_path):
        """A sequential run of the same graph reaches the same end time;
        its critical path span matches the partitioned run's."""
        par = analyze(traced_parallel_run(tmp_path, "serial"))
        sim = build(crossed_graph(), seed=7)
        capture = CausalCapture(tmp_path / "seq.jsonl")
        capture.attach(sim)
        sim.run()
        capture.close()
        seq = analyze(tmp_path / "seq.jsonl")
        assert seq.nodes[-1]["time_ps"] == par.nodes[-1]["time_ps"]
        assert seq.cut_edges == []  # one rank, nothing crosses


class TestCausalCli:
    def test_run_critpath_merge_flows_roundtrip(self, tmp_path, capsys):
        from repro.config import save
        from repro.__main__ import main

        config = tmp_path / "machine.json"
        save(crossed_graph(), config)
        metrics = tmp_path / "cli.jsonl"
        assert main(["run", str(config), "--ranks", "2",
                     "--strategy", "round_robin",
                     "--backend", "processes", "--trace-causal",
                     "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "causal shards ->" in out
        assert sorted(find_causal_shards(metrics)) == [0, 1]

        assert main(["obs", "critpath", str(metrics), "--top", "5",
                     "--json", str(tmp_path / "cp.json")]) == 0
        out = capsys.readouterr().out
        assert "critical path (run-end):" in out
        assert "cut edges" in out
        payload = json.loads((tmp_path / "cp.json").read_text())
        assert payload["schema"] == "repro-critpath/1"
        assert payload["path"] and payload["cut_edges"]

        assert main(["obs", "merge", str(metrics), "--flows",
                     "-o", str(tmp_path / "flows.json")]) == 0
        trace = json.loads((tmp_path / "flows.json").read_text())
        flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]
        assert flows and len(flows) % 2 == 0
        assert all(e["cat"] == "causal" for e in flows)
        assert trace["otherData"]["causal_flows"]["flows"] == len(flows) // 2

    def test_critpath_without_capture_is_one_line_error(self, tmp_path,
                                                        capsys):
        from repro.__main__ import main

        assert main(["obs", "critpath",
                     str(tmp_path / "never.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "trace-causal" in err
        assert "Traceback" not in err

    def test_merge_flows_without_capture_degrades(self, tmp_path, capsys):
        from repro.config import save
        from repro.__main__ import main

        config = tmp_path / "machine.json"
        save(crossed_graph(), config)
        metrics = tmp_path / "nf.jsonl"
        assert main(["run", str(config), "--ranks", "2",
                     "--strategy", "round_robin",
                     "--backend", "processes",
                     "--metrics", str(metrics)]) == 0
        assert main(["obs", "merge", str(metrics), "--flows",
                     "-o", str(tmp_path / "nf-trace.json")]) == 0
        trace = json.loads((tmp_path / "nf-trace.json").read_text())
        assert not [e for e in trace["traceEvents"]
                    if e["ph"] in ("s", "f")]
        assert "trace-causal" in trace["otherData"]["causal_flows"]["note"]


class TestWorkerSideCapture:
    def test_processes_shards_written_by_workers(self, tmp_path):
        base = traced_parallel_run(tmp_path, "processes")
        shards = find_causal_shards(base)
        assert sorted(shards) == [0, 1]
        for rank, shard in shards.items():
            records = [json.loads(line) for line in
                       shard.read_text().splitlines()]
            assert records[0]["rank"] == rank
            assert records[-1]["kind"] == "causal_end"

    def test_setup_sends_become_roots_under_processes(self, tmp_path):
        """The parent performs setup()-time sends pre-fork, so the
        processes shards carry no send row for them; the analyzer must
        treat the arrival as a root, exactly as the serial backend's
        cause=None row concludes."""
        serial = load_causal(traced_parallel_run(tmp_path, "serial"))
        procs = load_causal(traced_parallel_run(tmp_path, "processes",
                                                name="p.jsonl"))
        assert len(procs.recvs) == len(serial.recvs)
        missing = set(serial.sends) - set(procs.sends)
        assert all(serial.sends[key][0] is None for key in missing)
