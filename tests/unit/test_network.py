"""Tests for the interconnect models: routing, NIC throttling, traffic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigGraph, build, build_crossbar, build_fat_tree, build_torus
from repro.core import Params, Simulation
from repro.network import (NetMessage, Nic, PatternEndpoint, Router, flatten,
                           torus_step, unflatten)


class TestCoordinateMath:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
           st.integers(0, 1000))
    @settings(max_examples=60)
    def test_flatten_unflatten_roundtrip(self, a, b, c, index):
        dims = (a, b, c)
        total = a * b * c
        index %= total
        assert flatten(unflatten(index, dims), dims) == index

    def test_torus_step_direct(self):
        assert torus_step(0, 3, 8, wrap=True) == 1
        assert torus_step(3, 0, 8, wrap=True) == -1
        assert torus_step(2, 2, 8, wrap=True) == 0

    def test_torus_step_wraps_shorter_way(self):
        assert torus_step(0, 7, 8, wrap=True) == -1  # backwards through wrap
        assert torus_step(7, 0, 8, wrap=True) == 1

    def test_mesh_never_wraps(self):
        assert torus_step(0, 7, 8, wrap=False) == 1
        assert torus_step(7, 0, 8, wrap=False) == -1


def _network(topo_builder, n_eps, pattern="neighbor", count=4, size="4KB",
             inj_bw="3.2GB/s", seed=3, **topo_kwargs):
    g = ConfigGraph("net")
    topo = topo_builder(g, **topo_kwargs)
    assert topo.num_endpoints >= n_eps
    for i in range(n_eps):
        g.component(f"nic{i}", "network.Nic",
                    {"injection_bandwidth": inj_bw})
        g.component(f"ep{i}", "network.PatternEndpoint",
                    {"endpoint_id": i, "n_endpoints": n_eps, "pattern": pattern,
                     "count": count, "size": size, "gap": "3us"})
        g.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
        topo.attach(g, i, f"nic{i}", "net", latency="10ns")
    sim = build(g, seed=seed)
    return sim


class TestRouting:
    @pytest.mark.parametrize("dims", [(4,), (2, 2), (3, 3), (2, 3, 4), (4, 4)])
    def test_torus_delivers_all(self, dims):
        import math

        n = math.prod(dims)
        sim = _network(build_torus, n, dims=dims, locals_per_router=1)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        for i in range(n):
            assert values[f"ep{i}.received"] == 4

    def test_torus_minimal_hops(self):
        # 8-ring: neighbor pattern crosses exactly 1 inter-router link,
        # plus the delivery hop = 2 recorded hops.
        sim = _network(build_torus, 8, dims=(8,), locals_per_router=1)
        sim.run()
        for i in range(8):
            assert sim.stats()[f"ep{i}.hops"].mean == 2.0

    def test_torus_wraparound_used(self):
        # bitcomplement on an 8-ring: 0<->7 are wrap-adjacent: 2 hops.
        sim = _network(build_torus, 8, pattern="bitcomplement", dims=(8,),
                       locals_per_router=1)
        sim.run()
        assert sim.stats()["ep0.hops"].mean == 2.0
        # 3<->4 are direct neighbours: also 2 hops.
        assert sim.stats()["ep3.hops"].mean == 2.0

    def test_multiple_locals_share_router(self):
        sim = _network(build_torus, 8, dims=(2, 2), locals_per_router=2)
        result = sim.run()
        assert result.reason == "exit"
        # endpoints 0,1 share router r0_0: a 0->1 message never leaves it.

    def test_fat_tree_delivers_all(self):
        sim = _network(build_fat_tree, 16, pattern="bitcomplement",
                       leaves=4, down_ports=4, spines=2)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        assert sum(values[f"ep{i}.received"] for i in range(16)) == 64

    def test_fat_tree_local_traffic_stays_in_leaf(self):
        sim = _network(build_fat_tree, 4, pattern="neighbor",
                       leaves=1, down_ports=4, spines=2)
        sim.run()
        # Same-leaf messages: 1 hop (delivery by the leaf).
        assert sim.stats()["ep0.hops"].mean == 1.0

    def test_fat_tree_remote_traffic_three_hops(self):
        sim = _network(build_fat_tree, 8, pattern="bitcomplement",
                       leaves=2, down_ports=4, spines=2)
        sim.run()
        # leaf -> spine -> leaf -> deliver = 3 recorded hops.
        assert sim.stats()["ep0.hops"].mean == 3.0

    def test_crossbar_single_hop(self):
        sim = _network(build_crossbar, 6, pattern="neighbor", n=6)
        sim.run()
        for i in range(6):
            assert sim.stats()[f"ep{i}.hops"].mean == 1.0

    def test_hotspot_pattern(self):
        sim = _network(build_torus, 8, pattern="hotspot", dims=(8,),
                       locals_per_router=1)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        assert values["ep0.received"] == 7 * 4
        assert values["ep0.sent"] == 0

    def test_uniform_pattern_conserves_messages(self):
        sim = _network(build_torus, 8, pattern="uniform", dims=(8,),
                       locals_per_router=1)
        sim.run(max_time="10ms")
        # The senders' exit fires with messages still in flight; drain.
        sim.run(ignore_exit=True)
        values = sim.stat_values()
        sent = sum(values[f"ep{i}.sent"] for i in range(8))
        received = sum(values[f"ep{i}.received"] for i in range(8))
        assert sent == 8 * 4
        assert received == sent

    def test_misrouted_message_detected(self):
        sim = Simulation(seed=1)
        ep = PatternEndpoint(sim, "ep", Params({
            "endpoint_id": 3, "n_endpoints": 8, "count": 0}))
        src = PatternEndpoint(sim, "src", Params({
            "endpoint_id": 0, "n_endpoints": 8, "count": 0}))
        sim.connect(src, "nic", ep, "nic", latency="1ns")
        sim.setup()
        src.send("nic", NetMessage(0, 5, 64))  # dest 5 != 3
        with pytest.raises(RuntimeError, match="misrouted"):
            sim.run()


class TestNicThrottle:
    def _one_way(self, inj_bw, size, n_messages=8):
        sim = Simulation(seed=2)
        src = PatternEndpoint(sim, "src", Params({
            "endpoint_id": 0, "n_endpoints": 2, "pattern": "neighbor",
            "count": n_messages, "size": size, "gap": "1us", "expected": 0}))
        dst = PatternEndpoint(sim, "dst", Params({
            "endpoint_id": 1, "n_endpoints": 2, "pattern": "neighbor",
            "count": 0, "expected": n_messages}))
        nic_s = Nic(sim, "nic_s", Params({"injection_bandwidth": inj_bw}))
        nic_d = Nic(sim, "nic_d", Params({"injection_bandwidth": inj_bw}))
        # dst sends to (1+1)%2 = 0, so with count=0 it only receives.
        sim.connect(src, "nic", nic_s, "cpu", latency="1ns")
        sim.connect(dst, "nic", nic_d, "cpu", latency="1ns")
        sim.connect(nic_s, "net", nic_d, "net", latency="10ns")
        result = sim.run()
        assert result.reason == "exit"
        return sim

    def test_throttle_slows_large_messages(self):
        fast = self._one_way("3.2GB/s", "1MB")
        slow = self._one_way("0.4GB/s", "1MB")
        assert slow.stats()["dst.latency_ps"].mean > \
            4 * fast.stats()["dst.latency_ps"].mean

    def test_small_messages_far_less_bandwidth_sensitive(self):
        """The Charon mechanism: small messages are overhead-dominated,
        so throttling injection bandwidth 8x barely moves them, while
        large messages scale almost linearly."""
        small_ratio = (self._one_way("0.4GB/s", 64).stats()["dst.latency_ps"].mean
                       / self._one_way("3.2GB/s", 64).stats()["dst.latency_ps"].mean)
        large_ratio = (self._one_way("0.4GB/s", "1MB").stats()["dst.latency_ps"].mean
                       / self._one_way("3.2GB/s", "1MB").stats()["dst.latency_ps"].mean)
        assert small_ratio < 1.5
        assert large_ratio > 4.0
        assert small_ratio < large_ratio / 2

    def test_injection_wait_accumulates_under_burst(self):
        sim = Simulation(seed=2)
        src = PatternEndpoint(sim, "src", Params({
            "endpoint_id": 0, "n_endpoints": 2, "pattern": "neighbor",
            "count": 8, "size": "1MB", "gap": "1ns", "expected": 0}))
        dst = PatternEndpoint(sim, "dst", Params({
            "endpoint_id": 1, "n_endpoints": 2, "count": 0, "expected": 8}))
        nic_s = Nic(sim, "nic_s", Params({"injection_bandwidth": "1GB/s"}))
        nic_d = Nic(sim, "nic_d", Params({}))
        sim.connect(src, "nic", nic_s, "cpu", latency="1ns")
        sim.connect(dst, "nic", nic_d, "cpu", latency="1ns")
        sim.connect(nic_s, "net", nic_d, "net", latency="10ns")
        sim.run()
        assert nic_s.s_inj_wait.maximum > 1_000_000  # queued > 1us
        assert nic_s.s_bytes_sent.count == 8 * 1024 * 1024

    def test_bad_pattern_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            PatternEndpoint(sim, "ep", Params({
                "endpoint_id": 0, "n_endpoints": 2, "pattern": "cyclone"}))


class TestRouterValidation:
    def test_unknown_kind(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Router(sim, "r", Params({"kind": "hypercube"}))

    def test_coords_dims_mismatch(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Router(sim, "r", Params({"kind": "torus", "dims": "4x4",
                                     "coords": "1,2,3"}))

    def test_route_function_directly(self):
        sim = Simulation()
        r = Router(sim, "r", Params({"kind": "torus", "dims": "4x4",
                                     "coords": "0,0", "locals": 2}))
        assert r.route(0) == "local0"
        assert r.route(1) == "local1"
        assert r.route(2) == "dim1_pos"   # router (0,1)
        assert r.route(8) == "dim0_pos"   # router (1,0)
        assert r.route(2 * 12) == "dim0_neg"  # router (3,0): wrap back
