"""Shared test fixtures: tiny components exercising the engine APIs."""

from __future__ import annotations

import pytest

from repro.core import Component, Event, Params, register


class Token(Event):
    """A payload-bearing test event."""

    __slots__ = ("value", "hops")

    def __init__(self, value: int = 0, hops: int = 0):
        self.value = value
        self.hops = hops


@register("testlib.PingPong")
class PingPong(Component):
    """Bounces a token back and forth ``n_round_trips`` times.

    Both sides count received tokens; the side constructed with
    ``initiator=True`` serves and stops the simulation via the primary
    exit protocol once its quota is met.
    """

    PORTS = {"io": "bidirectional token port"}

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.quota = self.params.find_int("n_round_trips", 10)
        self.initiator = self.params.find_bool("initiator", False)
        self.received = self.stats.counter("received")
        self.latencies = self.stats.accumulator("inter_arrival_ps")
        self._last_arrival = 0
        self.set_handler("io", self.on_token)
        if self.initiator:
            self.register_as_primary()

    def setup(self):
        if self.initiator:
            self.send("io", Token(value=1))

    def on_token(self, event):
        assert isinstance(event, Token)
        self.received.add()
        self.latencies.add(self.now - self._last_arrival)
        self._last_arrival = self.now
        if self.initiator and self.received.count >= self.quota:
            self.primary_ok_to_end()
            return
        self.send("io", Token(value=event.value + 1, hops=event.hops + 1))


@register("testlib.Clocked")
class Clocked(Component):
    """Counts its own clock ticks; stops after ``n_ticks`` if set."""

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.n_ticks = self.params.find_int("n_ticks", 0)
        self.ticks = self.stats.counter("ticks")
        self.clock = self.register_clock(
            self.params.find_str("clock", "1GHz"), self.on_tick
        )

    def on_tick(self, cycle):
        self.ticks.add()
        if self.n_ticks and cycle >= self.n_ticks:
            return True
        return False


@register("testlib.Sink")
class Sink(Component):
    """Counts everything arriving on its ``in`` port."""

    PORTS = {"in": "token sink"}

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.received = self.stats.counter("received")
        self.arrival_times = []
        self.set_handler("in", self.on_event)

    def on_event(self, event):
        self.received.add()
        self.arrival_times.append(self.now)


@register("testlib.Source")
class Source(Component):
    """Emits ``count`` tokens on its ``out`` port, one per ``period``."""

    PORTS = {"out": "token source"}

    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.count = self.params.find_int("count", 5)
        self.period = self.params.find_time("period", "1ns")
        self.sent = self.stats.counter("sent")

    def setup(self):
        self.schedule(self.period, self._emit)

    def _emit(self, _payload):
        self.send("out", Token(value=self.sent.count))
        self.sent.add()
        if self.sent.count < self.count:
            self.schedule(self.period, self._emit)


@pytest.fixture
def make_pingpong():
    """Factory building a ping-pong pair on a given Simulation-like host."""

    def factory(sim_a, sim_b=None, *, n=10, latency="5ns", connect=None):
        sim_b = sim_b or sim_a
        a = PingPong(sim_a, "ping", Params({"initiator": True, "n_round_trips": n}))
        b = PingPong(sim_b, "pong", Params({}))
        if connect is not None:
            connect(a, "io", b, "io", latency=latency)
        else:
            sim_a.connect(a, "io", b, "io", latency=latency)
        return a, b

    return factory
