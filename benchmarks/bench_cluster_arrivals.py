"""ENG-7 — bursty arrival floods: the cluster workload as an engine bench.

The cluster family is the first workload where the simulated system is
itself a service under traffic: a `cluster.JobSource` in burst mode
drops `burst_size` simultaneous submissions on the pending-event set,
a shape the fabric benches (steady clock ticks, balanced ping-pong)
never produce.  This bench measures sustained engine throughput under
that flood on the heap queue — the `cluster_arrivals/heap` key of the
CI regression gate — and pins the family's headline model claim on the
same workload: EASY backfill ends the identical trace with strictly
higher machine utilization than plain FCFS.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import ConfigGraph, build

#: Perf records feed the gated engine-throughput trajectory file.
BENCH_RECORD_EXPERIMENT = "engine_throughput"

JOBS = 4_000
NODES = 32


def cluster_machine(policy: str, jobs: int = JOBS, queue: str = "heap",
                    saturated: bool = False) -> object:
    """Burst shape floods the event queue (throughput bench); the
    ``saturated`` Poisson shape keeps a deep standing queue so packing
    quality — not arrival spacing — sets the makespan (policy bench)."""
    if saturated:
        arrivals = {"mode": "poisson", "mean_interarrival": "1.5ms"}
    else:
        arrivals = {"mode": "burst", "burst_size": 64,
                    "burst_gap": "180ms"}
    g = ConfigGraph(f"bench-cluster-{policy.split('.')[-1].lower()}")
    g.component("src", "cluster.JobSource",
                {"jobs": jobs, "mean_runtime": "20ms",
                 "max_nodes": 8, "window": 32, **arrivals})
    g.component("sched", "cluster.Scheduler",
                {"nodes": NODES, "policy": policy})
    g.component("pool", "cluster.NodePool", {"nodes": NODES})
    g.component("slo", "cluster.SLOStats", {"capacity": NODES})
    g.link("src", "out", "sched", "submit", latency="10ns")
    g.link("sched", "pool", "pool", "sched", latency="10ns")
    g.link("sched", "report", "slo", "report", latency="10ns")
    return build(g, seed=7, queue=queue)


def test_eng7_cluster_arrival_throughput(benchmark, report, perf_fields):
    """Sustained events/s of the full scheduling pipeline (heap queue)."""

    def run():
        sim = cluster_machine("cluster.EASYBackfill")
        return sim.run()

    result = benchmark(run)
    report(f"ENG-7 cluster arrivals [heap]: {result.events_executed} events, "
           f"{result.events_per_second:,.0f} events/s "
           f"({JOBS} jobs through source->scheduler->pool->slo)")
    perf_fields(result, workload="cluster_arrivals", queue="heap")
    assert result.reason == "exit"
    # arrival + launch + completion + report (+ sentinels) per job
    assert result.events_executed >= 4 * JOBS


def test_eng7_policy_utilization_ordering(benchmark, report, save_csv):
    """Backfill strictly beats FCFS on utilization for the bench trace."""

    def run_all():
        table = ResultTable(["policy", "utilization", "mean_wait_s",
                             "makespan_s", "backfilled"],
                            title="ENG-7 — policy ablation on one "
                                  "saturated Poisson trace")
        summaries = {}
        for policy in ("cluster.FCFS", "cluster.EASYBackfill",
                       "cluster.Priority"):
            sim = cluster_machine(policy, jobs=2_000, saturated=True)
            sim.run()
            slo = sim.component("slo").manifest_summary()
            summaries[policy] = slo
            stats = sim.stat_values()
            table.add_row(policy=policy.split(".")[-1],
                          utilization=round(slo["utilization"], 4),
                          mean_wait_s=round(slo["mean_wait_s"], 4),
                          makespan_s=round(slo["makespan_s"], 3),
                          backfilled=int(stats.get(
                              "sched.policy.backfilled", 0)))
        return table, summaries

    table, summaries = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng7_cluster_policies")
    fcfs = summaries["cluster.FCFS"]
    easy = summaries["cluster.EASYBackfill"]
    assert easy["utilization"] > fcfs["utilization"], \
        "EASY backfill must strictly beat FCFS utilization on this trace"
    assert easy["makespan_s"] <= fcfs["makespan_s"]
    for slo in summaries.values():
        assert slo["jobs"] == 2_000
