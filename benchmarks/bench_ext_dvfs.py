"""EXT-DVFS — frequency scaling and energy-to-solution.

Software-directed power management (a research thread of the paper's
author list) applied to the abstract core: sweep the operating
frequency for a bandwidth-bound workload (HPCCG) and a compute-bound
one (miniFE's FEA phase) and compare runtime, energy-to-solution and
the energy-optimal operating points.

Expected shapes: runtime falls monotonically with frequency but
*saturates* for the bandwidth-bound workload; energy-to-solution is
U-shaped (leakage punishes crawling, V²f punishes racing); overclocking
the memory-bound workload costs more energy per unit of speedup.
"""

import pytest

from repro.analysis import ResultTable
from repro.power.dvfs import energy_optimal_frequency, frequency_sweep

FREQS = [1.0e9, 1.4e9, 1.8e9, 2.2e9, 2.6e9, 3.0e9]
WORKLOADS = ("hpccg", "minife_fea")


def run_sweep():
    table = ResultTable(
        ["workload", "freq_ghz", "runtime_ms", "core_mj", "dram_mj",
         "total_mj", "edp"],
        title="EXT-DVFS — frequency sweep (4-wide core, DDR3-1333)",
    )
    sweeps = {}
    for workload in WORKLOADS:
        sweep = frequency_sweep(workload, FREQS)
        sweeps[workload] = sweep
        for freq in FREQS:
            point = sweep[freq]
            table.add_row(workload=workload, freq_ghz=freq / 1e9,
                          runtime_ms=point.runtime_ps / 1e9,
                          core_mj=point.core_energy_j * 1e3,
                          dram_mj=point.dram_energy_j * 1e3,
                          total_mj=point.total_energy_j * 1e3,
                          edp=point.energy_delay_product * 1e6)
    return sweeps, table


def test_ext_dvfs_sweep(benchmark, report, save_csv):
    sweeps, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_dvfs_sweep")

    for workload, sweep in sweeps.items():
        runtimes = [sweep[f].runtime_ps for f in FREQS]
        energies = [sweep[f].total_energy_j for f in FREQS]
        # Runtime monotone decreasing in frequency.
        assert runtimes == sorted(runtimes, reverse=True), workload
        # Energy is U-shaped with an interior optimum.
        optimum = energy_optimal_frequency(sweep)
        assert FREQS[0] < optimum < FREQS[-1], (workload, optimum)
        assert energies[0] > sweep[optimum].total_energy_j
        assert energies[-1] > sweep[optimum].total_energy_j

    # Frequency helps the compute-bound phase far more.
    hpccg_speedup = (sweeps["hpccg"][FREQS[0]].runtime_ps
                     / sweeps["hpccg"][FREQS[-1]].runtime_ps)
    fea_speedup = (sweeps["minife_fea"][FREQS[0]].runtime_ps
                   / sweeps["minife_fea"][FREQS[-1]].runtime_ps)
    assert fea_speedup > hpccg_speedup * 1.3

    # ...so overclocking the memory-bound one pays more energy/speedup.
    def cost_per_speedup(workload):
        sweep = sweeps[workload]
        ratio = sweep[FREQS[-1]].total_energy_j / sweep[1.4e9].total_energy_j
        speedup = sweep[1.4e9].runtime_ps / sweep[FREQS[-1]].runtime_ps
        return ratio / speedup

    assert cost_per_speedup("hpccg") > 1.15 * cost_per_speedup("minife_fea")
