"""Fig. 2 — Effects of cores per node on the FEA and solver phases.

Paper result (Cray XE6 dual-socket 12-core Magny-Cours): the solver
phases of both Charon and miniFE lose per-core efficiency as more cores
share the node (memory-bandwidth contention), while the FEA phases are
barely affected.  The proportional comparison between miniFE and Charon
solver responses stays within ~13% — miniFE is predictive of the
cores-per-node effect.

Shape assertions: solver efficiency decreases monotonically and
substantially by 12 cores; FEA efficiency stays high; the miniFE-vs-
Charon proportional difference passes the 13% threshold via the
validation framework.
"""

import pytest

from repro.analysis import ResultTable, Thresholds, ValidationStudy, Verdict
from repro.miniapps import cores_per_node_efficiency, proportional_difference

CORE_COUNTS = [1, 2, 4, 8, 12]
#: 4-channel DDR3 node, the Magny-Cours-class configuration (DESIGN.md).
NODE = dict(channels=4, issue_width=4, freq_hz=2.4e9)


def run_fig2():
    efficiencies = {
        phase: cores_per_node_efficiency(phase, CORE_COUNTS, **NODE)
        for phase in ("minife_solver", "charon_solver",
                      "minife_fea", "charon_fea")
    }
    table = ResultTable(["phase"] + [f"c{n}" for n in CORE_COUNTS],
                        title="Fig. 2 — per-core efficiency vs cores per node")
    for phase, eff in efficiencies.items():
        table.add_row(phase=phase, **{f"c{n}": eff[n] for n in CORE_COUNTS})
    return efficiencies, table


def test_fig2_cores_per_node(benchmark, report, save_csv):
    efficiencies, table = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig2_cores_per_node")

    for app in ("minife", "charon"):
        solver = efficiencies[f"{app}_solver"]
        fea = efficiencies[f"{app}_fea"]
        values = [solver[n] for n in CORE_COUNTS]
        # Solver efficiency decays monotonically and lands low.
        assert values == sorted(values, reverse=True), (app, values)
        assert solver[12] < 0.55, (app, solver[12])
        # FEA stays comparatively flat.
        assert fea[12] > 0.75, (app, fea[12])
        assert fea[12] > solver[12] + 0.25, app

    # The validation verdict: miniFE tracks Charon within 13% (paper).
    study = ValidationStudy("fig2-cores-per-node")
    study.add_series("solver_efficiency", efficiencies["charon_solver"],
                     efficiencies["minife_solver"],
                     thresholds=Thresholds(pass_below=0.13,
                                           caution_below=0.25))
    report(study.report())
    assert study.summary() is Verdict.PASS
