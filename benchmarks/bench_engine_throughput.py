"""ENG-1 — Discrete-event core throughput and the queue ablation.

The poster's subject is the toolkit itself, so the engine gets its own
benchmarks: raw event throughput (events executed per wall-clock
second) on two canonical workload shapes — a ping-pong pair (minimum
queue depth) and a many-component clocked fabric (wide queue) — for
both pending-event-set implementations (binary heap vs binned calendar
queue).  This is also the experiment that quantifies the repro-band
caveat ("PDES core far too slow" in pure Python): the measured
events/second ceiling is printed for the record in EXPERIMENTS.md.
"""

import pytest

from repro.analysis import ResultTable
from repro.core import Component, Event, Params, Simulation


class _Pinger(Component):
    def __init__(self, sim, name, params=None):
        super().__init__(sim, name, params)
        self.count = 0
        self.limit = self.params.find_int("limit", 10_000)
        self.set_handler("io", self.on_event)
        self.register_as_primary()

    def setup(self):
        self.send("io", Event())

    def on_event(self, event):
        self.count += 1
        if self.count >= self.limit:
            self.primary_ok_to_end()
        else:
            self.send("io", event)


def pingpong_machine(queue, n_events):
    # Each side receives the ball n_events/2 times: n_events deliveries.
    sim = Simulation(seed=1, queue=queue)
    a = _Pinger(sim, "a", Params({"limit": n_events // 2}))
    b = _Pinger(sim, "b", Params({"limit": n_events // 2}))
    sim.connect(a, "io", b, "io", latency="5ns")
    return sim


def clocked_fabric(queue, n_components, n_ticks):
    sim = Simulation(seed=1, queue=queue,
                     queue_kwargs={"bin_width": 1000} if queue == "binned" else None)

    class Ticker(Component):
        def __init__(self, s, name, params=None):
            super().__init__(s, name, params)
            self.ticks = 0
            self.register_clock("1GHz", self.on_tick)

        def on_tick(self, cycle):
            self.ticks += 1
            return self.ticks >= n_ticks

    for i in range(n_components):
        Ticker(sim, f"t{i}")
    return sim


@pytest.mark.parametrize("queue", ["heap", "binned"])
def test_eng1_pingpong_throughput(benchmark, queue, report, perf_fields):
    N_EVENTS = 20_000

    def run():
        sim = pingpong_machine(queue, N_EVENTS)
        result = sim.run()
        return result

    result = benchmark(run)
    report(f"ENG-1 ping-pong [{queue}]: "
           f"{result.events_executed} events, "
           f"{result.events_per_second:,.0f} events/s")
    perf_fields(result, workload="pingpong", queue=queue)
    assert result.reason == "exit"
    assert result.events_executed >= N_EVENTS


@pytest.mark.parametrize("queue", ["heap", "binned"])
def test_eng1_clocked_fabric_throughput(benchmark, queue, report, perf_fields):
    N_COMPONENTS, N_TICKS = 200, 50

    def run():
        sim = clocked_fabric(queue, N_COMPONENTS, N_TICKS)
        return sim.run()

    result = benchmark(run)
    report(f"ENG-1 clocked fabric [{queue}]: "
           f"{result.events_executed} events, "
           f"{result.events_per_second:,.0f} events/s")
    perf_fields(result, workload="clocked_fabric", queue=queue)
    assert result.reason == "exhausted"
    assert result.events_executed == N_COMPONENTS * N_TICKS


def test_eng1_summary_table(benchmark, report, save_csv):
    """One-shot comparison table across shapes and queue types."""

    def build_table():
        table = ResultTable(["workload", "queue", "events", "events_per_sec"],
                            title="ENG-1 — engine throughput by queue type")
        for queue in ("heap", "binned"):
            sim = pingpong_machine(queue, 20_000)
            r = sim.run()
            table.add_row(workload="pingpong", queue=queue,
                          events=r.events_executed,
                          events_per_sec=r.events_per_second)
            sim = clocked_fabric(queue, 200, 50)
            r = sim.run()
            table.add_row(workload="clocked", queue=queue,
                          events=r.events_executed,
                          events_per_sec=r.events_per_second)
        return table

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng1_throughput")
    # The repro-band reality check: a pure-Python DES runs somewhere in
    # the 10^4-10^6 events/s range — far below a C++ SST, which is why
    # every experiment in this repo is scaled down (DESIGN.md).
    for eps in table.column("events_per_sec"):
        assert 1e3 < eps < 1e8
