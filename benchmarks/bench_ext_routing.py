"""EXT-ROUTING — minimal vs Valiant routing on a dragonfly.

The classic adaptive-routing trade-off, reproduced on the message-level
fabric: under the *group-shift adversarial pattern* (every group sends
all its traffic to the next group, so minimal routing funnels it over a
single global link) Valiant's random-intermediate-group detour spreads
load over all global links and wins decisively; under benign uniform
traffic the detour only adds hops and minimal routing is at least as
good.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import ConfigGraph, build
from repro.config.topology import build_dragonfly

GROUPS, A, H, P = 9, 4, 2, 2  # balanced: 4*2 = 9-1


def build_machine(routing, pattern, count=4, size="64KB"):
    graph = ConfigGraph(f"df-{routing}-{pattern}")
    topo = build_dragonfly(graph, groups=GROUPS, routers_per_group=A,
                           global_per_router=H, locals_per_router=P,
                           router_params={"routing": routing})
    n = topo.num_endpoints
    for i in range(n):
        graph.component(f"nic{i}", "network.Nic",
                        {"injection_bandwidth": "3.2GB/s"})
        graph.component(f"ep{i}", "network.PatternEndpoint",
                        {"endpoint_id": i, "n_endpoints": n,
                         "pattern": pattern, "count": count, "size": size,
                         "gap": "1us", "shift_amount": A * P})
        graph.link(f"ep{i}", "nic", f"nic{i}", "cpu", latency="1ns")
        topo.attach(graph, i, f"nic{i}", "net", latency="10ns")
    return graph, n


def run_pattern(routing, pattern):
    graph, n = build_machine(routing, pattern)
    sim = build(graph, seed=5)
    result = sim.run()
    if pattern == "uniform":
        # Uniform has no receive quota: drain the in-flight messages.
        sim.run(ignore_exit=True)
    else:
        assert result.reason == "exit", (routing, pattern, result.reason)
    stats = sim.stats()
    latencies = [stats[f"ep{i}.latency_ps"].mean for i in range(n)
                 if stats[f"ep{i}.latency_ps"].count]
    hops = [stats[f"ep{i}.hops"].mean for i in range(n)
            if stats[f"ep{i}.hops"].count]
    return {
        "completion_ps": sim.last_event_time,
        "mean_latency_ps": sum(latencies) / len(latencies),
        "mean_hops": sum(hops) / len(hops),
    }


def run_study():
    table = ResultTable(
        ["pattern", "routing", "completion_us", "mean_latency_us",
         "mean_hops"],
        title=f"EXT-ROUTING — dragonfly g={GROUPS} a={A} h={H} p={P}",
    )
    results = {}
    for pattern in ("shift", "uniform"):
        for routing in ("minimal", "valiant"):
            r = run_pattern(routing, pattern)
            results[(pattern, routing)] = r
            table.add_row(pattern=pattern, routing=routing,
                          completion_us=r["completion_ps"] / 1e6,
                          mean_latency_us=r["mean_latency_ps"] / 1e6,
                          mean_hops=r["mean_hops"])
    return results, table


def test_ext_routing_adversarial_vs_benign(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_study, rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_routing")

    shift_min = results[("shift", "minimal")]
    shift_val = results[("shift", "valiant")]
    uni_min = results[("uniform", "minimal")]
    uni_val = results[("uniform", "valiant")]

    # Adversarial: Valiant wins decisively on completion and latency.
    assert shift_val["completion_ps"] < 0.8 * shift_min["completion_ps"]
    assert shift_val["mean_latency_ps"] < 0.8 * shift_min["mean_latency_ps"]
    # It pays in path length.
    assert shift_val["mean_hops"] > shift_min["mean_hops"]

    # Benign uniform traffic at low load: minimal is at least as good.
    assert uni_min["mean_latency_ps"] <= uni_val["mean_latency_ps"] * 1.05
    assert uni_val["mean_hops"] >= uni_min["mean_hops"]

    # And the adversarial pattern really is the painful one for minimal
    # routing (uniform spreads the same offered load over all links).
    assert shift_min["mean_latency_ps"] > 1.5 * uni_min["mean_latency_ps"]
