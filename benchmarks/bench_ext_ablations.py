"""EXT-ABL — ablations of the design choices DESIGN.md calls out.

Three model-internal design decisions get quantified here:

* **FR-FCFS vs FCFS memory scheduling** — the controller's reorder
  window converts row-buffer locality into bandwidth; on an interleaved
  row-conflict stream FR-FCFS must finish no later and reorder often.
* **Row-buffer locality sensitivity** — the DRAM timing model's
  row-hit/row-miss split is what differentiates streaming from random
  traffic; random access over a large footprint must be measurably
  slower per byte than streaming.
* **Compute/communication overlap penalty** — the abstract core's
  ``overlap_penalty`` knob (0 = hard roofline, 1 = fully serial)
  bounds the design-space results; the sweep shows the headline
  Fig. 10 conclusion (GDDR5 wins) is robust across the knob's range.
"""

import pytest

from repro.analysis import ResultTable
from repro.memory import SchedulingDRAM
from repro.processor import CoreConfig, CoreTimingModel, workload
from repro.memory.dram import DRAMModel


def run_scheduler_ablation():
    def total_time(policy, n_pairs=200):
        sched = SchedulingDRAM("DDR3-1333", policy=policy, window=12)
        row_stride = (sched.model.tech.row_bytes
                      * sched.model.tech.n_banks)
        for i in range(n_pairs):
            # Interleave row-0 hits with same-bank row-conflicts.
            sched.submit(0, i * 64, 64)
            sched.submit(0, row_stride + i * 64, 64)
        done = sched.drain_all()
        return max(t for t, _ in done), sched.reordered

    table = ResultTable(["policy", "finish_us", "reordered"],
                        title="EXT-ABL — memory-controller scheduling")
    results = {}
    for policy in ("fcfs", "frfcfs"):
        finish, reordered = total_time(policy)
        results[policy] = (finish, reordered)
        table.add_row(policy=policy, finish_us=finish / 1e6,
                      reordered=reordered)
    return results, table


def test_ext_abl_frfcfs(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_scheduler_ablation, rounds=1,
                                        iterations=1)
    report(table)
    save_csv(table, "ext_abl_frfcfs")
    fcfs_time, _ = results["fcfs"]
    fr_time, fr_reordered = results["frfcfs"]
    assert fr_time <= fcfs_time
    assert fr_reordered > 0
    # The win is material on this pathological stream.
    assert fr_time < fcfs_time * 0.9


def run_locality_ablation():
    import numpy as np

    def chain_latency(pattern, n=2000):
        """Dependent access chain: each request issues when the previous
        completes, exposing the row-hit/row-miss latency difference.
        (Fully pipelined streams hide row misses behind the channel —
        which the bandwidth tests verify separately.)"""
        model = DRAMModel("DDR3-1333")
        rng = np.random.default_rng(7)
        now = 0
        for i in range(n):
            if pattern == "stream":
                addr = i * 64
            else:
                addr = int(rng.integers(0, 1 << 28)) & ~63
            now = model.request(now, addr, 64)
        return now / n, model.stats.row_hit_rate

    table = ResultTable(["pattern", "ns_per_access", "row_hit_rate"],
                        title="EXT-ABL — row-buffer locality sensitivity "
                              "(dependent-chain latency)")
    results = {}
    for pattern in ("stream", "random"):
        per_access, hit_rate = chain_latency(pattern)
        results[pattern] = (per_access, hit_rate)
        table.add_row(pattern=pattern, ns_per_access=per_access / 1000,
                      row_hit_rate=hit_rate)
    return results, table


def test_ext_abl_row_locality(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_locality_ablation, rounds=1,
                                        iterations=1)
    report(table)
    save_csv(table, "ext_abl_row_locality")
    stream_lat, stream_hits = results["stream"]
    random_lat, random_hits = results["random"]
    assert stream_hits > 0.9
    assert random_hits < 0.3
    # Row misses cost tRP+tRCD extra on a dependent chain.
    assert random_lat > 1.5 * stream_lat


def run_overlap_ablation():
    table = ResultTable(
        ["overlap_penalty", "ddr3_ms", "gddr5_ms", "gddr5_gain"],
        title="EXT-ABL — overlap-penalty sensitivity of the Fig. 10 result "
              "(hpccg, 4-wide)",
    )
    gains = {}
    spec = workload("hpccg")
    model = CoreTimingModel(CoreConfig(issue_width=4), spec)
    for penalty in (0.0, 0.15, 0.3, 0.6, 1.0):
        ddr3 = model.standalone_runtime_ps(2_000_000,
                                           DRAMModel("DDR3-1066"),
                                           overlap_penalty=penalty)
        gddr5 = model.standalone_runtime_ps(2_000_000, DRAMModel("GDDR5"),
                                            overlap_penalty=penalty)
        gains[penalty] = ddr3 / gddr5 - 1.0
        table.add_row(overlap_penalty=penalty, ddr3_ms=ddr3 / 1e9,
                      gddr5_ms=gddr5 / 1e9, gddr5_gain=gains[penalty])
    return gains, table


def test_ext_abl_overlap_penalty(benchmark, report, save_csv):
    gains, table = benchmark.pedantic(run_overlap_ablation, rounds=1,
                                      iterations=1)
    report(table)
    save_csv(table, "ext_abl_overlap")
    # The qualitative Fig. 10 conclusion is knob-robust: GDDR5 wins at
    # every overlap-penalty setting.
    for penalty, gain in gains.items():
        assert gain > 0.05, (penalty, gain)
    # The knob matters quantitatively (it is a real modelling choice).
    assert max(gains.values()) > 1.5 * min(gains.values())


def run_prefetch_ablation():
    from repro.config import ConfigGraph, build

    def run(depth, pattern):
        graph = ConfigGraph("pf")
        graph.component("cpu", "processor.TrafficGenerator",
                        {"requests": 512, "pattern": pattern, "stride": 64,
                         "footprint": "1MB", "outstanding": 1})
        graph.component("l1", "memory.Cache",
                        {"size": "16KB", "ways": 4, "prefetch": depth})
        graph.component("mem", "memory.MemController",
                        {"technology": "DDR3-1333"})
        graph.link("cpu", "mem", "l1", "cpu", latency="1ns")
        graph.link("l1", "mem", "mem", "cpu", latency="2ns")
        sim = build(graph, seed=1)
        assert sim.run().reason == "exit"
        values = sim.stat_values()
        return values["cpu.runtime_ps"], values["l1.prefetch_hits"]

    table = ResultTable(
        ["pattern", "depth", "runtime_us", "prefetch_hits", "speedup"],
        title="EXT-ABL — next-N-line prefetcher (vs depth 0)",
    )
    speedups = {}
    for pattern in ("stream", "random"):
        base, _ = run(0, pattern)
        for depth in (0, 2, 8):
            runtime, hits = run(depth, pattern)
            speedups[(pattern, depth)] = base / runtime
            table.add_row(pattern=pattern, depth=depth,
                          runtime_us=runtime / 1e6, prefetch_hits=hits,
                          speedup=base / runtime)
    return speedups, table


def test_ext_abl_prefetcher(benchmark, report, save_csv):
    speedups, table = benchmark.pedantic(run_prefetch_ablation, rounds=1,
                                         iterations=1)
    report(table)
    save_csv(table, "ext_abl_prefetcher")
    # Streams gain substantially and monotonically with depth.
    assert speedups[("stream", 8)] > speedups[("stream", 2)] > 1.3
    assert speedups[("stream", 8)] > 2.0
    # Random access sees little benefit (accuracy matters, not volume).
    assert speedups[("random", 8)] < 1.25
    # The contrast itself.
    assert speedups[("stream", 8)] > 2 * speedups[("random", 8)]
