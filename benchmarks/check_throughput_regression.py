#!/usr/bin/env python
"""CI gate: fail if engine events/sec regressed vs the committed baseline.

Reads the freshly-generated ``BENCH_engine_throughput.json`` perf
records (schema ``repro-bench-record/1``; see docs/OBSERVABILITY.md and
docs/PERFORMANCE.md), picks the *latest* record per
``(workload, queue, arbiter)`` key, and compares its
``events_per_second`` against ``benchmarks/throughput_baseline.json``.
A measurement below ``baseline * (1 - tolerance)`` (tolerance defaults
to the PR 4 gate of 25%) fails the job.

Baseline values are deliberately conservative — roughly a quarter of a
warm local run — because shared CI runners are slower and noisier than a
developer box; the baseline exists to catch *structural* regressions
(an accidentally disabled arbiter, a de-pooled hot loop), not to police
single-digit-percent drift.  Refresh it with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py \
        benchmarks/bench_engine_hotpath.py \
        benchmarks/bench_engine_checkpoint.py -q
    python benchmarks/check_throughput_regression.py --update

ENG-4 (``bench_engine_checkpoint.py``) publishes the
``checkpointed_parallel/heap`` key: a 2-rank run with sparse engine
snapshots enabled, so this gate also catches checkpointing becoming
expensive enough to drag the whole run down.

Exit status: 0 ok, 1 regression, 2 missing records/baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORDS = REPO_ROOT / "BENCH_engine_throughput.json"
BASELINE = Path(__file__).resolve().parent / "throughput_baseline.json"

#: fraction of baseline a measurement may drop before the gate fails
DEFAULT_TOLERANCE = 0.25


def record_key(record: dict) -> str | None:
    """``workload/queue[/arbiter]`` identity of one throughput record."""
    workload = record.get("workload")
    if not workload or "events_per_second" not in record:
        return None
    parts = [workload, record.get("queue", "-")]
    if record.get("arbiter"):
        parts.append(record["arbiter"])
    return "/".join(parts)


def latest_measurements(records_path: Path) -> dict[str, float]:
    """Latest events/sec per key (records append chronologically)."""
    records = json.loads(records_path.read_text())
    latest: dict[str, float] = {}
    for record in records:
        key = record_key(record)
        if key is not None and record.get("outcome", "passed") == "passed":
            latest[key] = float(record["events_per_second"])
    return latest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=Path, default=RECORDS,
                        help="BENCH_engine_throughput.json to check")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="committed baseline (events/sec per key)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop below baseline "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline at a quarter of the "
                             "measured events/sec (conservative CI headroom); "
                             "with --only/--skip the untouched keys are "
                             "preserved (merge, not overwrite)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="PREFIX",
                        help="gate only baseline keys starting with PREFIX "
                             "(repeatable); lets a job that runs one bench "
                             "suite skip the other suites' keys")
    parser.add_argument("--skip", action="append", default=[],
                        metavar="PREFIX",
                        help="ignore baseline keys starting with PREFIX "
                             "(repeatable)")
    args = parser.parse_args(argv)

    def selected(key: str) -> bool:
        if args.only and not any(key.startswith(p) for p in args.only):
            return False
        return not any(key.startswith(p) for p in args.skip)

    if not args.records.exists():
        print(f"no records at {args.records} — run the engine benches first",
              file=sys.stderr)
        return 2
    measured = latest_measurements(args.records)
    if not measured:
        print(f"{args.records} holds no throughput records "
              "(missing events_per_second/workload fields)", file=sys.stderr)
        return 2

    if args.update:
        updated = {key: round(eps / 4) for key, eps in measured.items()
                   if selected(key)}
        if (args.only or args.skip) and args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            baseline.update(updated)
        else:
            baseline = updated
        baseline = dict(sorted(baseline.items()))
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {args.baseline} ({len(baseline)} keys, "
              f"{len(updated)} updated)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline} — run with --update to seed it",
              file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    failures = []
    gated = {key: val for key, val in baseline.items() if selected(key)}
    if not gated:
        print("no baseline keys match the --only/--skip filters",
              file=sys.stderr)
        return 2
    print(f"{'key':<40} {'baseline':>12} {'measured':>12}  verdict")
    for key, expected in sorted(gated.items()):
        floor = expected * (1.0 - args.tolerance)
        got = measured.get(key)
        if got is None:
            failures.append(f"{key}: no measurement in {args.records.name}")
            print(f"{key:<40} {expected:>12,.0f} {'-':>12}  MISSING")
        elif got < floor:
            failures.append(
                f"{key}: {got:,.0f} events/s < {floor:,.0f} "
                f"(baseline {expected:,.0f} - {args.tolerance:.0%})")
            print(f"{key:<40} {expected:>12,.0f} {got:>12,.0f}  REGRESSED")
        else:
            print(f"{key:<40} {expected:>12,.0f} {got:>12,.0f}  ok")

    if failures:
        print("\nthroughput regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print(f"\nthroughput gate ok ({len(gated)} keys, "
          f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
