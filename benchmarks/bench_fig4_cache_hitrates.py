"""Fig. 4 — Cache behaviour of the FEA and solver phases.

Paper result (three-level Nehalem/Magny-Cours hierarchies): in the FEA
phase, Charon and miniFE match closely at L1 (proportional difference
<= 3%) but diverge badly at L2 and L3 (miniFE's hit rates are ~3x and
~6x Charon's) — the *fail* verdict: miniFE's FEA cache behaviour is not
predictive of Charon's.  In the solver phase the two stay within ~20%
at every level — predictive, with arguably-high thresholds.

Shape assertions: L1 FEA within 5%; L2 and L3 FEA ratios >= 2x
(order-of-magnitude divergence); solver differences within 20%; and the
validation framework returns exactly the paper's verdict pattern
(FEA fail, solver pass-with-caution-thresholds).
"""

import pytest

from repro.analysis import Thresholds, ValidationStudy, Verdict
from repro.analysis import ResultTable
from repro.miniapps import cache_hit_rates

LEVELS = ("L1", "L2", "L3")


def run_fig4():
    rates = {
        phase: cache_hit_rates(phase)
        for phase in ("minife_fea", "charon_fea",
                      "minife_solver", "charon_solver")
    }
    table = ResultTable(["phase"] + list(LEVELS),
                        title="Fig. 4 — cache hit rates by phase (64x-scaled "
                              "Nehalem-class hierarchy)")
    for phase, r in rates.items():
        table.add_row(phase=phase, **{lvl: r[lvl] for lvl in LEVELS})
    return rates, table


def test_fig4_cache_hit_rates(benchmark, report, save_csv):
    rates, table = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig4_cache_hitrates")

    minife_fea, charon_fea = rates["minife_fea"], rates["charon_fea"]
    minife_sol, charon_sol = rates["minife_solver"], rates["charon_solver"]

    # FEA: L1 matches within a few percent (paper: <= 3%).
    l1_prop = abs(minife_fea["L1"] - charon_fea["L1"]) / charon_fea["L1"]
    assert l1_prop < 0.05, l1_prop
    # FEA: L2/L3 diverge by integer factors (paper: 3x and 6x).
    assert minife_fea["L2"] > 2 * charon_fea["L2"]
    assert minife_fea["L3"] > 1.5 * charon_fea["L3"]

    # Solver: within the paper's ~20% acceptance at L2/L3.
    for level in LEVELS:
        prop = abs(minife_sol[level] - charon_sol[level]) / charon_sol[level]
        assert prop < 0.20, (level, prop)

    # Validation-framework verdicts mirror the paper's.
    fea_study = ValidationStudy("fig4-fea-cache")
    fea_study.add_series("hit_rate", charon_fea, minife_fea,
                         thresholds=Thresholds(0.05, 0.25))
    solver_study = ValidationStudy("fig4-solver-cache")
    solver_study.add_series("hit_rate", charon_sol, minife_sol,
                            thresholds=Thresholds(0.20, 0.30))
    report(fea_study.report(), solver_study.report())
    assert fea_study.summary() is Verdict.FAIL  # "not predictive"
    assert fea_study.verdicts()["hit_rate[L1]"] is Verdict.PASS
    assert solver_study.summary() is Verdict.PASS  # "predictive"
