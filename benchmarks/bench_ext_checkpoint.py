"""EXT-CKPT — Local-SSD checkpointing study (paper §3.1 hook).

Teller's per-node SSDs were installed "enabling us to study local
checkpointing strategies".  This extension experiment runs that study
on the simulator:

1. checkpoint-interval sweep around the Daly optimum, simulated vs
   analytic (the resilience model's validation);
2. SSD vs shared-parallel-filesystem checkpoint targets across node
   counts: the PFS wins while its aggregate bandwidth exceeds the
   per-node demand, then loses badly — local checkpointing is the
   scalable strategy, which is the study's conclusion.
"""

import pytest

from repro.analysis import ResultTable
from repro.resilience import (LOCAL_SSD, PARALLEL_FS, FailureModel,
                              daly_interval_s, expected_runtime_s,
                              simulate_job)

# A DOE-scale-ish scenario, shrunk to simulation-friendly numbers:
WORK_S = 500.0
RESTART_S = 10.0
NODE_MTBF_S = 25_000.0
STATE_BYTES_PER_NODE = 2 * 10**9  # 2 GB checkpoint per node


def run_interval_sweep():
    n_nodes = 128
    mtbf = FailureModel(NODE_MTBF_S, n_nodes).system_mtbf_s
    delta = LOCAL_SSD.checkpoint_time_ps(STATE_BYTES_PER_NODE, n_nodes) / 1e12
    optimum = daly_interval_s(delta, mtbf)
    table = ResultTable(
        ["interval_s", "analytic_s", "simulated_s", "failures"],
        title=f"EXT-CKPT — interval sweep (128 nodes, MTBF {mtbf:.0f}s, "
              f"delta {delta:.1f}s, Daly optimum {optimum:.1f}s)",
    )
    sweep = {}
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        interval = optimum * factor
        analytic = expected_runtime_s(WORK_S, interval, delta, RESTART_S,
                                      mtbf)
        jobs = [simulate_job(work_s=WORK_S, interval_s=interval,
                             checkpoint_s=delta, restart_s=RESTART_S,
                             mtbf_s=mtbf, seed=s) for s in range(16)]
        simulated = sum(j.runtime_ps for j in jobs) / len(jobs) / 1e12
        failures = sum(j.s_failures.count for j in jobs) / len(jobs)
        sweep[factor] = (analytic, simulated)
        table.add_row(interval_s=interval, analytic_s=analytic,
                      simulated_s=simulated, failures=failures)
    return optimum, sweep, table


def run_target_comparison():
    table = ResultTable(
        ["nodes", "ssd_delta_s", "pfs_delta_s", "ssd_runtime_s",
         "pfs_runtime_s", "winner"],
        title="EXT-CKPT — local SSD vs parallel filesystem by node count",
    )
    winners = {}
    for n_nodes in (16, 64, 256, 1024):
        mtbf = FailureModel(NODE_MTBF_S, n_nodes).system_mtbf_s
        runtimes = {}
        deltas = {}
        for target in (LOCAL_SSD, PARALLEL_FS):
            delta = target.checkpoint_time_ps(STATE_BYTES_PER_NODE,
                                              n_nodes) / 1e12
            interval = daly_interval_s(delta, mtbf)
            runtimes[target.name] = expected_runtime_s(
                WORK_S, interval, delta, RESTART_S, mtbf)
            deltas[target.name] = delta
        winner = min(runtimes, key=runtimes.get)
        winners[n_nodes] = winner
        table.add_row(nodes=n_nodes,
                      ssd_delta_s=deltas["local-ssd"],
                      pfs_delta_s=deltas["parallel-fs"],
                      ssd_runtime_s=runtimes["local-ssd"],
                      pfs_runtime_s=runtimes["parallel-fs"],
                      winner=winner)
    return winners, table


def test_ext_ckpt_interval_sweep(benchmark, report, save_csv):
    optimum, sweep, table = benchmark.pedantic(run_interval_sweep,
                                               rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_ckpt_interval_sweep")
    # Simulation tracks the analytic expectation: tight at the optimum,
    # looser off-optimum where few-but-costly failures keep the sample
    # variance high even over 16 seeds.
    analytic_opt, simulated_opt = sweep[1.0]
    assert simulated_opt == pytest.approx(analytic_opt, rel=0.2)
    for factor, (analytic, simulated) in sweep.items():
        assert simulated == pytest.approx(analytic, rel=0.35), factor
    # The Daly point is the best simulated point in the sweep.
    best = min(sweep, key=lambda f: sweep[f][1])
    assert best in (0.5, 1.0, 2.0), best  # optimum is flat-bottomed


def test_ext_ckpt_ssd_vs_pfs(benchmark, report, save_csv):
    winners, table = benchmark.pedantic(run_target_comparison,
                                        rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_ckpt_targets")
    # Small machine: the shared filesystem's fat pipe wins.
    assert winners[16] == "parallel-fs"
    # At scale the divided PFS bandwidth loses to per-node SSDs —
    # the §3.1 local-checkpointing conclusion.
    assert winners[256] == "local-ssd"
    assert winners[1024] == "local-ssd"
