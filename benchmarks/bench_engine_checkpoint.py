"""ENG-4 — Engine checkpoint/restore: overhead, latency, warm-start.

`repro.ckpt` (PR 5) must be effectively free when enabled at a sane
cadence, or nobody will leave it on.  This bench pins that claim on a
realistic machine (HPCCG on a torus, 2 simulation ranks):

1. **overhead guard** — a parallel run whose ``checkpoint_every``
   lands snapshots on **< 1% of epoch boundaries** stays within 10% of
   the uncheckpointed run's events/s (best-of-3 on both sides, so the
   gate measures snapshot cost, not scheduler noise), and its final
   statistics are identical;
2. **snapshot/restore latency** — wall time and on-disk size of one
   mid-run snapshot, and the time to rebuild a live engine from it
   (the restored engine finishes with the reference statistics);
3. **warm-start speedup** — a ``dse.sweep(warm_start=...)`` that
   restores per-point prefix snapshots reproduces the cold sweep's
   design points exactly; the measured speedup is recorded.

Records append to the ``engine_throughput`` trajectory
(``BENCH_engine_throughput.json``); the overhead guard's events/s is
gated by ``benchmarks/check_throughput_regression.py`` under the
``checkpointed_parallel/heap`` key.
"""

import time
from pathlib import Path

from repro.ckpt import restore, snapshot_parallel
from repro.config import build_parallel
from repro.miniapps import build_app_machine

# Records land in the engine_throughput trajectory next to ENG-1/2's.
BENCH_RECORD_EXPERIMENT = "engine_throughput"

N_APP_RANKS = 16
ITERATIONS = 120
SIM_RANKS = 2
ROUNDS = 3


def machine():
    return build_app_machine("miniapps.HPCCG", N_APP_RANKS,
                             iterations=ITERATIONS)


def _run(checkpoint=None):
    psim = build_parallel(machine(), SIM_RANKS, strategy="bfs", seed=2)
    t0 = time.perf_counter()
    if checkpoint is not None:
        result = psim.run(checkpoint_every=checkpoint[0],
                          checkpoint_dir=str(checkpoint[1]))
    else:
        result = psim.run()
    wall = time.perf_counter() - t0
    stats = psim.stat_values()
    written = list(psim.checkpoints_written)
    psim.close()
    assert result.reason == "exit"
    return result, wall, stats, written


def test_eng4_checkpoint_overhead_guard(report, perf_fields, tmp_path):
    """PR 5 perf gate: <1%-of-epochs checkpointing costs <10% events/s."""
    reference, _, ref_stats, _ = _run()
    interval = reference.end_time // 2
    # Interleave the two sides and take each side's best round, so the
    # comparison measures snapshot cost rather than machine drift.
    cold_walls, ckpt_runs = [], []
    for i in range(ROUNDS):
        cold_walls.append(_run()[1])
        ckpt_runs.append(_run(checkpoint=(interval, tmp_path / f"c{i}")))
    cold_wall = min(cold_walls)
    ckpt_wall = min(wall for _, wall, _, _ in ckpt_runs)
    result, _, stats, written = ckpt_runs[0]

    # The cadence really is sparse, and the snapshots really happened.
    assert written
    snap_fraction = len(written) / result.epochs
    assert snap_fraction < 0.01, snap_fraction
    # Checkpointing changes nothing observable.
    assert stats == ref_stats
    assert result.end_time == reference.end_time
    assert result.events_executed == reference.events_executed

    cold_eps = reference.events_executed / cold_wall
    ckpt_eps = reference.events_executed / ckpt_wall
    ratio = ckpt_eps / cold_eps
    report(f"ENG-4 overhead [{SIM_RANKS} ranks, {result.epochs} epochs, "
           f"{len(written)} snapshots = {snap_fraction:.2%} of epochs]: "
           f"cold {cold_eps:,.0f} events/s, checkpointed {ckpt_eps:,.0f} "
           f"events/s ({ratio:.1%})")
    perf_fields(workload="checkpointed_parallel", queue="heap",
                events_executed=result.events_executed,
                events_per_second=ckpt_eps,
                checkpoint_overhead_ratio=ratio,
                snapshots=len(written))
    assert ratio >= 0.90, f"checkpointing cost {1 - ratio:.1%} of throughput"


def test_eng4_snapshot_restore_latency(report, perf_fields, tmp_path):
    """One mid-run snapshot: write cost, size, rebuild cost, fidelity."""
    reference, _, ref_stats, _ = _run()
    psim = build_parallel(machine(), SIM_RANKS, strategy="bfs", seed=2)
    psim.run(max_time=reference.end_time // 2)
    t0 = time.perf_counter()
    path = snapshot_parallel(psim, tmp_path / "snap")
    snapshot_s = time.perf_counter() - t0
    psim.close()
    size = sum(f.stat().st_size for f in Path(path).iterdir())

    t0 = time.perf_counter()
    resumed = restore(path)
    restore_s = time.perf_counter() - t0
    result = resumed.run()
    stats = resumed.stat_values()
    resumed.close()

    report(f"ENG-4 latency: snapshot {snapshot_s * 1e3:.1f} ms "
           f"({size / 1024:.0f} KiB, {SIM_RANKS} shards), "
           f"restore {restore_s * 1e3:.1f} ms")
    perf_fields(snapshot_seconds=snapshot_s, restore_seconds=restore_s,
                snapshot_bytes=size)
    assert stats == ref_stats
    assert result.end_time == reference.end_time


def test_eng4_warm_start_speedup(report, perf_fields, tmp_path):
    """Warm starting: identical sweep results, recorded speedup.

    The sweep half pins the correctness claim on the real `dse` flow
    (warm and cold sweeps agree point-for-point — its MixCore points
    are nearly analytic, so their wall time says nothing).  The speedup
    half measures the mechanism where the prefix actually costs
    something: restoring an 80%-of-the-run snapshot of the HPCCG
    machine versus re-simulating from zero.
    """
    from repro.config import build
    from repro.ckpt import snapshot
    from repro.dse import sweep

    grid = (["hpccg"], [2, 4], ["DDR3-1066", "GDDR5"])
    kwargs = dict(instructions=400_000, seed=2)
    cold = sweep(*grid, **kwargs)
    warm1 = sweep(*grid, warm_start="100us", warm_dir=tmp_path, **kwargs)
    snaps = list(tmp_path.glob("warm-*/MANIFEST.json"))
    assert len(snaps) == len(cold.points)
    warm2 = sweep(*grid, warm_start="100us", warm_dir=tmp_path, **kwargs)
    assert cold.points == warm1.points == warm2.points

    # Speedup mechanism, measured on an event-heavy machine: 80% warm.
    graph = machine()
    sim = build(graph, seed=2)
    full = sim.run()
    prefix_ps = full.end_time * 4 // 5
    sim = build(graph, seed=2)
    sim.run(max_time=prefix_ps, finalize=False)
    wpath = snapshot(sim, tmp_path / "warm-engine")

    def cold_run():
        t0 = time.perf_counter()
        s = build(graph, seed=2)
        s.run()
        return time.perf_counter() - t0, s.stat_values()

    def warm_run():
        t0 = time.perf_counter()
        s = restore(wpath)
        s.run()
        return time.perf_counter() - t0, s.stat_values()

    colds, warms = [], []
    for _ in range(ROUNDS):
        colds.append(cold_run())
        warms.append(warm_run())
    assert all(stats == colds[0][1] for _, stats in colds + warms)
    cold_s = min(w for w, _ in colds)
    warm_s = min(w for w, _ in warms)
    speedup = cold_s / warm_s
    report(f"ENG-4 warm start: {len(cold.points)} sweep points identical "
           f"cold/warm; 80%-prefix engine restore {warm_s:.3f}s vs cold "
           f"{cold_s:.3f}s ({speedup:.1f}x)")
    perf_fields(warm_points=len(cold.points), cold_run_seconds=cold_s,
                warm_run_seconds=warm_s, warm_start_speedup=speedup)
    # Skipping 80% of the events must win, import noise and all.
    assert speedup > 1.5, speedup
