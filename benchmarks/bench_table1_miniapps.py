"""Table 1 — The Mantevo miniapp inventory.

The paper's Table 1 lists the current Mantevo miniapp efforts (HPCCG,
miniFE, miniMD, miniXyce, miniGhost, ...).  Our substitution (DESIGN.md)
implements the subset exercised by the paper's experiments as skeleton
apps plus the solver trio of Fig. 5.  This bench smoke-runs *every*
registered miniapp on the reference machine and reports its runtime,
message and byte profile — the "does the whole suite run" row of the
reproduction.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine

#: miniapp -> short description (mirroring the paper's Table 1 style)
SUITE = {
    "HPCCG": "sparse linear algebra (CG) solver",
    "MiniFE": "implicit FEM: assembly + CG solve",
    "Lulesh": "shock hydrodynamics (DOE challenge problem)",
    "CTH": "shock physics, large halo messages",
    "SAGE": "adaptive-grid hydrodynamics",
    "XNOBEL": "hydrocode with comm/compute overlap",
    "Charon": "semiconductor device simulation (small messages)",
    "CGSolver": "unpreconditioned CG skeleton",
    "BiCGStabILU": "BiCGSTAB + ILU(0) skeleton",
    "MLSolver": "BiCGSTAB + ML multigrid skeleton",
    "MiniMD": "molecular dynamics force computation",
    "MiniGhost": "FDM/FVM halo exchange (BSPMA)",
    "MiniXyce": "circuit RC ladder transient",
    "PhdMesh": "explicit FEM + contact detection",
    "MiniDSMC": "particle-based low-density fluid",
}

N_RANKS = 16
ITERATIONS = 2


def run_suite():
    table = ResultTable(
        ["miniapp", "description", "runtime_ms", "msgs_per_rank",
         "mean_comm_frac"],
        title=f"Table 1 — miniapp suite smoke run ({N_RANKS} ranks)",
    )
    stats = {}
    for app, description in SUITE.items():
        graph = build_app_machine(f"miniapps.{app}", N_RANKS,
                                  iterations=ITERATIONS)
        sim = build(graph, seed=3)
        result = sim.run()
        assert result.reason == "exit", (app, result.reason)
        s = app_runtime_stats(sim, N_RANKS)
        stats[app] = s
        comm_frac = (s["mean_comm_ps"] / s["runtime_ps"]
                     if s["runtime_ps"] else 0.0)
        table.add_row(miniapp=app, description=description,
                      runtime_ms=s["runtime_ps"] / 1e9,
                      msgs_per_rank=s["messages_per_rank"],
                      mean_comm_frac=comm_frac)
    return stats, table


def test_table1_suite(benchmark, report, save_csv):
    stats, table = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report(table)
    save_csv(table, "table1_miniapps")

    # Every miniapp completed and did real work.
    for app, s in stats.items():
        assert s["runtime_ps"] > 0, app
        assert s["messages"] > 0, app

    # Cross-suite signature the paper leans on: Charon sends far more
    # (small) messages than the large-message halo apps.
    for halo_app in ("CTH", "SAGE", "XNOBEL", "Lulesh", "HPCCG"):
        assert stats["Charon"]["messages_per_rank"] > \
            stats[halo_app]["messages_per_rank"], halo_app
