"""ENG-3 — Configuration-layer scalability.

The repro band singles the config layer out as the part of SST that
maps cleanly to Python, so it gets a scalability benchmark of its own:
declare / validate / partition / serialize / reload machine graphs from
hundreds to ~ten thousand components, reporting throughput at each
stage.  Assertions check near-linear scaling (no accidental quadratic
behaviour in the graph code paths).
"""

import time

import pytest

from repro.analysis import ResultTable
from repro.config import (ConfigGraph, build_torus, from_json, to_json)
from repro.core.partition import partition

SIZES = [(4, 4, 4), (8, 8, 4), (12, 12, 8)]  # 64 .. 1152 routers


def declare(dims):
    graph = ConfigGraph(f"torus{dims}")
    topo = build_torus(graph, dims, locals_per_router=2)
    # Attach a NIC per endpoint so the graph has leaf components too.
    for i in range(topo.num_endpoints):
        graph.component(f"nic{i}", "network.Nic", {})
        topo.attach(graph, i, f"nic{i}", "net", latency="10ns")
    return graph


def stage_times(dims):
    t0 = time.perf_counter()
    graph = declare(dims)
    t_declare = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph.validate()
    t_validate = time.perf_counter() - t0

    t0 = time.perf_counter()
    nodes, edges, weights = graph.partition_inputs()
    partition(nodes, edges, 8, strategy="bfs", weights=weights)
    t_partition = time.perf_counter() - t0

    t0 = time.perf_counter()
    text = to_json(graph)
    t_serialize = time.perf_counter() - t0

    t0 = time.perf_counter()
    reloaded = from_json(text)
    t_load = time.perf_counter() - t0
    assert len(reloaded) == len(graph)

    return {
        "components": len(graph),
        "links": graph.num_links(),
        "declare_s": t_declare,
        "validate_s": t_validate,
        "partition_s": t_partition,
        "serialize_s": t_serialize,
        "load_s": t_load,
    }


def test_eng3_config_scalability(benchmark, report, save_csv):
    def run():
        table = ResultTable(
            ["components", "links", "declare_s", "validate_s", "partition_s",
             "serialize_s", "load_s"],
            title="ENG-3 — config-layer stage times vs machine size",
        )
        rows = []
        for dims in SIZES:
            row = stage_times(dims)
            rows.append(row)
            table.add_row(**row)
        return rows, table

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng3_config_layer")

    # Near-linear scaling: time ratio bounded by ~3x the size ratio
    # (allows logs and constant noise, catches quadratic regressions).
    small, large = rows[0], rows[-1]
    size_ratio = large["components"] / small["components"]
    for stage in ("declare_s", "validate_s", "serialize_s", "load_s"):
        if small[stage] < 1e-4:  # too fast to compare meaningfully
            continue
        time_ratio = large[stage] / small[stage]
        assert time_ratio < 3.0 * size_ratio, (stage, time_ratio, size_ratio)


def test_eng3_declare_throughput(benchmark, report):
    """Components+links declared per second on the mid-size machine."""
    graph = benchmark(lambda: declare(SIZES[1]))
    total = len(graph) + graph.num_links()
    report(f"ENG-3 mid-size declaration: {len(graph)} components, "
           f"{graph.num_links()} links (total {total} graph objects)")
    assert len(graph) > 500


def test_eng3_roundtrip_integrity(benchmark, report):
    """Serialize -> load preserves every component and link exactly."""
    from repro.config import to_dict

    def run():
        graph = declare(SIZES[0])
        reloaded = from_json(to_json(graph))
        return graph, reloaded

    graph, reloaded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert to_dict(graph) == to_dict(reloaded)
    report(f"ENG-3 round trip: {len(graph)} components, "
           f"{graph.num_links()} links preserved exactly")
