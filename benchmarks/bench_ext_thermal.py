"""EXT-THERMAL — the temperature/leakage/reliability chain (paper §5).

The paper's objective-function discussion links three models this
repository implements separately: power (McPAT-lite), temperature
(thermal RC + exponential leakage) and reliability (Arrhenius-derated
MTBF feeding the checkpoint model).  This bench runs the whole chain
over the issue-width sweep:

    width -> dynamic power -> junction temperature -> leakage
          -> derated MTBF -> optimal checkpoint interval
          -> expected runtime overhead at scale

and asserts the qualitative conclusions: wide cores run
disproportionately hot (leakage amplification), hot nodes fail faster,
and the checkpoint overhead of a hot 8-wide machine exceeds the naive
(temperature-blind) estimate.
"""

import pytest

from repro.analysis import ResultTable
from repro.dse import run_design_point
from repro.power import CorePowerModel
from repro.power.thermal import ThermalModel, ThermalParams
from repro.resilience import (FailureModel, daly_interval_s,
                              expected_runtime_s)

WIDTHS = (1, 2, 4, 8)
WORKLOAD = "lulesh"
N_NODES = 512
#: a full socket: the per-core dynamic power times the core count plus
#: a fixed uncore share — the quantity that actually heats the die.
CORES_PER_NODE = 16
UNCORE_W = 10.0
NOMINAL_NODE_MTBF_S = 300_000.0
CKPT_S, RESTART_S, WORK_S = 8.0, 15.0, 5_000.0


def run_chain():
    # A hotter-running package than the defaults so the sweep spans a
    # wide temperature range.
    thermal = ThermalModel(ThermalParams(r_thermal_c_per_w=1.1,
                                         leakage_ref_w=1.5,
                                         leakage_beta=0.025))
    table = ResultTable(
        ["width", "dynamic_w", "temp_c", "leakage_w", "mtbf_derate",
         "ckpt_interval_s", "runtime_overhead"],
        title="EXT-THERMAL — width -> heat -> leakage -> reliability -> "
              "checkpoint overhead",
    )
    rows = {}
    for width in WIDTHS:
        point = run_design_point(WORKLOAD, issue_width=width,
                                 technology="DDR3-1066",
                                 instructions=1_000_000)
        ips = point.performance
        dynamic = (CorePowerModel(width).dynamic_power_w(ips)
                   * CORES_PER_NODE + UNCORE_W)
        op = thermal.steady_state(dynamic)
        node_mtbf = thermal.derated_mtbf_s(NOMINAL_NODE_MTBF_S,
                                           op.temperature_c)
        system_mtbf = FailureModel(node_mtbf, N_NODES).system_mtbf_s
        interval = daly_interval_s(CKPT_S, system_mtbf)
        expected = expected_runtime_s(WORK_S, interval, CKPT_S, RESTART_S,
                                      system_mtbf)
        rows[width] = {
            "dynamic": dynamic,
            "temp": op.temperature_c,
            "leakage": op.leakage_power_w,
            "derate": NOMINAL_NODE_MTBF_S / node_mtbf,
            "interval": interval,
            "overhead": expected / WORK_S - 1.0,
        }
        table.add_row(width=width, dynamic_w=dynamic,
                      temp_c=op.temperature_c,
                      leakage_w=op.leakage_power_w,
                      mtbf_derate=rows[width]["derate"],
                      ckpt_interval_s=interval,
                      runtime_overhead=rows[width]["overhead"])
    return rows, table


def test_ext_thermal_chain(benchmark, report, save_csv):
    rows, table = benchmark.pedantic(run_chain, rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_thermal_chain")

    # Monotone chain: wider -> hotter -> leakier -> less reliable ->
    # shorter checkpoint intervals -> more resilience overhead.
    for metric in ("dynamic", "temp", "leakage", "derate", "overhead"):
        values = [rows[w][metric] for w in WIDTHS]
        assert values == sorted(values), (metric, values)
    intervals = [rows[w]["interval"] for w in WIDTHS]
    assert intervals == sorted(intervals, reverse=True)

    # Leakage amplification: 8-wide leakage grows faster than its
    # dynamic power relative to 1-wide.
    leak_ratio = rows[8]["leakage"] / rows[1]["leakage"]
    dyn_ratio = rows[8]["dynamic"] / rows[1]["dynamic"]
    assert leak_ratio > dyn_ratio * 0.5  # exponential term is material
    assert rows[8]["temp"] - rows[1]["temp"] > 10.0

    # The reliability derating is material at the hot end.
    assert rows[8]["derate"] > 1.5
    # ...and so is the added checkpoint overhead.
    assert rows[8]["overhead"] > rows[1]["overhead"] * 1.1


def test_ext_thermal_runaway_boundary(benchmark, report):
    """Sweep dynamic power until thermal runaway: the boundary exists
    and is reported rather than silently mis-modelled."""
    from repro.power.thermal import ThermalRunaway

    def find_boundary():
        thermal = ThermalModel(ThermalParams(r_thermal_c_per_w=1.1,
                                             leakage_ref_w=1.5,
                                             leakage_beta=0.025))
        last_ok = 0.0
        for power in range(5, 200, 5):
            try:
                thermal.steady_state(float(power))
                last_ok = float(power)
            except ThermalRunaway:
                return last_ok, float(power)
        return last_ok, None

    last_ok, first_bad = benchmark.pedantic(find_boundary, rounds=1,
                                            iterations=1)
    report(f"EXT-THERMAL runaway boundary: stable at {last_ok:.0f}W, "
           f"runaway/limit at {first_bad}W")
    assert first_bad is not None
    assert last_ok > 20.0
