"""Fig. 5 — Relative weak scaling of Krylov solvers.

Paper result: comparing miniFE's unpreconditioned CG against
Charon/Aztec BiCGSTAB with ILU(0) and with ML (multigrid)
preconditioning at growing core counts: all solvers lose efficiency
with scale; the ML variant is the most communication-hungry — it sends
over 40% more messages per core than the non-multilevel solvers and
scales worst, which is exactly why miniFE is *not* predictive of
Charon+ML (miniFE contains no multilevel computation).  Charon+ILU(0)
vs miniFE earns a *caution*.

Shape assertions: per-iteration time grows with rank count for every
solver (weak-scaling loss); ML sends >= 1.4x the messages per rank of
ILU; ML is the slowest solver in absolute time; CG degrades least.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine

RANK_COUNTS = [8, 32, 128]
SOLVERS = ("CGSolver", "BiCGStabILU", "MLSolver")
ITERATIONS = 4


def run_solver(app, n_ranks):
    graph = build_app_machine(f"miniapps.{app}", n_ranks,
                              iterations=ITERATIONS)
    sim = build(graph, seed=5)
    result = sim.run()
    assert result.reason == "exit", (app, n_ranks, result.reason)
    stats = app_runtime_stats(sim, n_ranks)
    return {
        "time_per_iter_us": stats["runtime_ps"] / ITERATIONS / 1e6,
        "messages_per_rank_iter": stats["messages_per_rank"] / ITERATIONS,
    }


def run_fig5():
    results = {
        (app, n): run_solver(app, n)
        for app in SOLVERS
        for n in RANK_COUNTS
    }
    table = ResultTable(
        ["solver", "ranks", "time_per_iter_us", "relative_to_8",
         "messages_per_rank_iter"],
        title="Fig. 5 — weak scaling of the solver trio",
    )
    for app in SOLVERS:
        base = results[(app, RANK_COUNTS[0])]["time_per_iter_us"]
        for n in RANK_COUNTS:
            r = results[(app, n)]
            table.add_row(solver=app, ranks=n,
                          time_per_iter_us=r["time_per_iter_us"],
                          relative_to_8=r["time_per_iter_us"] / base,
                          messages_per_rank_iter=r["messages_per_rank_iter"])
    return results, table


def test_fig5_weak_scaling(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig5_weak_scaling")

    # Weak-scaling loss: every solver slows with rank count.
    for app in SOLVERS:
        times = [results[(app, n)]["time_per_iter_us"] for n in RANK_COUNTS]
        assert times[-1] > times[0], (app, times)

    # The ML message signature: >40% more messages per core than ILU.
    for n in RANK_COUNTS:
        ml = results[("MLSolver", n)]["messages_per_rank_iter"]
        ilu = results[("BiCGStabILU", n)]["messages_per_rank_iter"]
        cg = results[("CGSolver", n)]["messages_per_rank_iter"]
        assert ml > 1.4 * ilu, (n, ml, ilu)
        assert ilu > cg, n

    # Absolute ordering at scale: CG < ILU < ML per iteration.
    at_scale = {app: results[(app, RANK_COUNTS[-1])]["time_per_iter_us"]
                for app in SOLVERS}
    assert at_scale["CGSolver"] < at_scale["BiCGStabILU"] < at_scale["MLSolver"]

    # CG (miniFE's solver) degrades least - the basis for the paper's
    # "not predictive of ML" conclusion.
    degradation = {
        app: (results[(app, RANK_COUNTS[-1])]["time_per_iter_us"]
              / results[(app, RANK_COUNTS[0])]["time_per_iter_us"])
        for app in SOLVERS
    }
    assert degradation["CGSolver"] <= degradation["MLSolver"]
