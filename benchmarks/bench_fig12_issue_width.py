"""Fig. 12 — Cost and power efficiency for different processor issue widths.

Paper result: wider cores are always faster but super-linearly more
expensive in power and area (regfile ~O(w^1.8)).  On Lulesh an 8-wide
core was 78% faster than single-issue while using 123% more power.  In
general 1-2 wide cores were the most power-efficient and 2-4 wide the
most cost-efficient.

Shape assertions: monotone performance in width with diminishing
returns; the 8-vs-1 speedup in the 50-110% band with a power increase
in the 80-180% band; perf/W maximised at width 1 or 2; perf/$ maximised
at width 2 or 4.
"""

import pytest

from repro.analysis import ResultTable
from repro.dse import PAPER_WIDTHS, PAPER_WORKLOADS

MEMORY = "DDR3-1066"  # the balanced memory of the study


def build_fig12_table(sweep):
    table = ResultTable(
        ["app", "width", "gips", "power_w", "cost_d", "perf_per_watt",
         "perf_per_dollar", "area_mm2"],
        title=f"Fig. 12 — width sweep on {MEMORY}",
    )
    from repro.power import CorePowerModel

    for app in PAPER_WORKLOADS:
        for width in PAPER_WIDTHS:
            point = sweep.point(app, width, MEMORY)
            table.add_row(
                app=app, width=width,
                gips=point.performance / 1e9,
                power_w=point.total_power_w,
                cost_d=point.system_cost_dollars,
                perf_per_watt=point.perf_per_watt / 1e9,
                perf_per_dollar=point.perf_per_dollar / 1e6,
                area_mm2=CorePowerModel(width).area_mm2(),
            )
    return table


def test_fig12_issue_width(benchmark, paper_sweep, report, save_csv):
    table = benchmark.pedantic(build_fig12_table, args=(paper_sweep,),
                               rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig12_issue_width")

    for app in PAPER_WORKLOADS:
        points = {w: paper_sweep.point(app, w, MEMORY) for w in PAPER_WIDTHS}
        perfs = [points[w].performance for w in PAPER_WIDTHS]
        # Wider is faster, with diminishing returns.
        assert perfs == sorted(perfs)
        assert (perfs[1] / perfs[0]) > (perfs[3] / perfs[2])
        # 8-wide vs 1-wide: paper 78% faster / 123% more power.
        speedup = points[8].performance / points[1].performance - 1
        power_up = points[8].total_power_w / points[1].total_power_w - 1
        assert 0.50 < speedup < 1.10, (app, speedup)
        assert 0.80 < power_up < 1.80, (app, power_up)
        # Energy: wide cores need more energy to reach a solution.
        assert points[8].energy_to_solution_j > points[1].energy_to_solution_j
        # perf/W argmax in {1, 2}; perf/$ argmax in {2, 4}.
        best_pw = max(PAPER_WIDTHS, key=lambda w: points[w].perf_per_watt)
        best_pd = max(PAPER_WIDTHS, key=lambda w: points[w].perf_per_dollar)
        assert best_pw in (1, 2), (app, best_pw)
        assert best_pd in (2, 4), (app, best_pd)


def test_fig12_area_scaling(benchmark, report):
    """The O(w^1.8) law quoted by the paper, on its own."""
    from repro.power import CorePowerModel, register_file_energy_scale

    def scaling_rows():
        table = ResultTable(["width", "regfile_energy_scale", "area_mm2"],
                            title="Register-file / area scaling (O(w^1.8))")
        for width in PAPER_WIDTHS:
            table.add_row(width=width,
                          regfile_energy_scale=register_file_energy_scale(width),
                          area_mm2=CorePowerModel(width).area_mm2())
        return table

    table = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    report(table)
    scale = table.column("regfile_energy_scale")
    assert scale[3] / scale[0] == pytest.approx(8 ** 1.8)
