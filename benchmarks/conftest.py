"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md): it runs the experiment through the
simulator, prints the paper-style rows to the terminal (uncaptured, so
they appear in ``bench_output.txt``), writes a CSV under
``benchmarks/results/``, and asserts the *shape* claims — orderings,
crossover locations, rough factors — never absolute times.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
#: BENCH_<exp>.json perf records land at the repo root — the
#: machine-readable trajectory optimization PRs are measured against.
BENCH_RECORD_DIR = Path(__file__).parent.parent


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Append one perf record per executed bench test to BENCH_<exp>.json.

    Records are plain JSON lists (see docs/OBSERVABILITY.md for the
    schema); ``<exp>`` is the bench module name minus its ``bench_``
    prefix, so e.g. ``bench_engine_throughput.py`` feeds
    ``BENCH_engine_throughput.json``.  A bench module may redirect its
    records into another experiment's file by defining
    ``BENCH_RECORD_EXPERIMENT`` (``bench_engine_hotpath.py`` feeds the
    engine_throughput trajectory this way).

    Schema ``repro-bench-record/1`` optional throughput fields: a test
    that measures engine throughput publishes ``events_executed`` and
    ``events_per_second`` (plus free-form context such as ``workload``)
    through the ``perf_fields`` fixture; they land as top-level keys so
    BENCH_*.json tracks throughput, not just wall time.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    module = Path(str(item.fspath)).stem
    if not module.startswith("bench_"):
        return
    from repro.obs import environment_info
    from repro.obs.manifest import append_json_record

    experiment = getattr(item.module, "BENCH_RECORD_EXPERIMENT", None) \
        or module[len("bench_"):]
    record = {
        "schema": "repro-bench-record/1",
        "experiment": experiment,
        "test": item.nodeid,
        "outcome": report.outcome,
        "wall_seconds": report.duration,
        "created_unix": time.time(),
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": environment_info(),
    }
    # Throughput fields recorded via the perf_fields fixture (schema
    # keys stay in charge: user properties never shadow the core keys).
    for key, value in item.user_properties:
        if key not in record:
            record[key] = value
    append_json_record(
        BENCH_RECORD_DIR / f"BENCH_{experiment}.json", record
    )


@pytest.fixture
def perf_fields(request):
    """Publish throughput fields into this test's BENCH_*.json record.

    Call with a RunResult-like object (anything carrying
    ``events_executed`` / ``events_per_second``) and/or keyword fields::

        perf_fields(result, workload="pingpong", queue=queue)

    Fields become top-level keys of the appended perf record.
    """

    def _publish(result=None, **fields) -> None:
        if result is not None:
            fields.setdefault("events_executed", result.events_executed)
            fields.setdefault("events_per_second", result.events_per_second)
        for key, value in fields.items():
            request.node.user_properties.append((key, value))

    return _publish


@pytest.fixture
def report(capfd):
    """Print result blocks straight to the terminal (bypassing capture)."""

    def _report(*blocks) -> None:
        with capfd.disabled():
            for block in blocks:
                print()
                print(block if isinstance(block, str) else block.render())

    return _report


@pytest.fixture
def save_csv():
    """Persist a ResultTable under benchmarks/results/<name>.csv."""

    def _save(table, name: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.csv"
        table.to_csv(path)
        return path

    return _save


@pytest.fixture(scope="session")
def paper_sweep():
    """The §5.2.1 design-space grid, shared by the Fig. 10/11/12 benches.

    2 miniapps x 4 issue widths x 3 memory technologies, each point a
    discrete-event simulation.
    """
    from repro.dse import sweep

    return sweep()
