"""ENG-2 — hot-path ablation: the shared-clock arbiter on and off.

PR 4's kernel optimisations (shared :class:`repro.core.ClockArbiter`,
event-record pooling, hoisted dispatch loops) target the same-frequency
clocked-fabric shape that dominates architectural models: hundreds of
components all ticking at the core clock.  This bench measures that
shape — 1000 components x 200 ticks — for both pending-event-set
implementations with the arbiter enabled (the default) and disabled
(``REPRO_CLOCK_ARBITER=0``, the pre-PR per-clock scheduling path), and
asserts the headline claim: the arbiter is at least 2x faster on the
heap queue.  Records append to the ``engine_throughput`` trajectory
(``BENCH_engine_throughput.json``) alongside ENG-1's, distinguished by
their ``workload``/``arbiter`` fields.

``benchmarks/check_throughput_regression.py`` gates CI on these
numbers; see docs/PERFORMANCE.md.
"""

import pytest

from repro.core import Component, Simulation

# Records land in the engine_throughput trajectory next to ENG-1's.
BENCH_RECORD_EXPERIMENT = "engine_throughput"

N_COMPONENTS = 1_000
N_TICKS = 200


def _set_arbiter(monkeypatch, enabled: bool) -> None:
    monkeypatch.setenv("REPRO_CLOCK_ARBITER", "1" if enabled else "0")


def big_fabric(queue, n_components=N_COMPONENTS, n_ticks=N_TICKS):
    """The 1k-component same-frequency fabric the PR is measured on."""
    sim = Simulation(seed=1, queue=queue,
                     queue_kwargs={"bin_width": 1000} if queue == "binned" else None)

    class Ticker(Component):
        def __init__(self, s, name, params=None):
            super().__init__(s, name, params)
            self.ticks = 0
            self.register_clock("1GHz", self.on_tick)

        def on_tick(self, cycle):
            self.ticks += 1
            return self.ticks >= n_ticks

    for i in range(n_components):
        Ticker(sim, f"t{i}")
    return sim


@pytest.mark.parametrize("queue", ["heap", "binned"])
@pytest.mark.parametrize("arbiter", ["on", "off"])
def test_eng2_fabric_arbiter_ablation(benchmark, queue, arbiter, report,
                                      perf_fields, monkeypatch):
    _set_arbiter(monkeypatch, arbiter == "on")

    def run():
        sim = big_fabric(queue)
        return sim.run()

    result = benchmark(run)
    report(f"ENG-2 fabric [{queue}, arbiter {arbiter}]: "
           f"{result.events_executed} events, "
           f"{result.events_per_second:,.0f} events/s")
    perf_fields(result, workload="hotpath_fabric", queue=queue,
                arbiter=arbiter)
    assert result.reason == "exhausted"
    # Events = handler invocations, identical either way (the arbiter
    # compensates its fan-out into the executed-event count).
    assert result.events_executed == N_COMPONENTS * N_TICKS


def test_eng2_arbiter_speedup(report, perf_fields, monkeypatch):
    """The PR 4 acceptance gate: >= 2x events/s, arbiter on vs off.

    Machine-independent (a ratio of two runs on the same box), so it can
    assert a floor.  Local headroom is ~10x on the heap queue; 2x keeps
    the gate robust on slow shared CI runners.
    """

    def best_eps(enabled: bool) -> float:
        _set_arbiter(monkeypatch, enabled)
        best = 0.0
        for _ in range(3):
            sim = big_fabric("heap")
            result = sim.run()
            assert result.events_executed == N_COMPONENTS * N_TICKS
            best = max(best, result.events_per_second)
        return best

    # Warm-up evens out allocator/cache effects before the timed pairs.
    best_eps(True)
    eps_off = best_eps(False)
    eps_on = best_eps(True)
    speedup = eps_on / eps_off
    report(f"ENG-2 arbiter speedup [heap]: {eps_off:,.0f} -> "
           f"{eps_on:,.0f} events/s ({speedup:.2f}x)")
    perf_fields(workload="hotpath_speedup", queue="heap",
                events_per_second=eps_on,
                events_per_second_arbiter_off=eps_off,
                arbiter_speedup=speedup)
    assert speedup >= 2.0, (
        f"shared-clock arbiter speedup regressed: {speedup:.2f}x < 2x "
        f"({eps_off:,.0f} -> {eps_on:,.0f} events/s)"
    )


def test_eng2_pingpong_no_regression(report, perf_fields, monkeypatch):
    """Arbiter machinery must not tax clock-free workloads.

    A pure link-event ping-pong never touches the arbiter; on/off should
    be within noise.  The assertion is deliberately loose (40%) because
    two 20k-event runs on a shared runner can jitter; the CI baseline
    check (check_throughput_regression.py) is the tighter gate.
    """
    from bench_engine_throughput import pingpong_machine

    def best_eps(enabled: bool) -> float:
        _set_arbiter(monkeypatch, enabled)
        best = 0.0
        for _ in range(3):
            sim = pingpong_machine("heap", 20_000)
            result = sim.run()
            best = max(best, result.events_per_second)
        return best

    best_eps(True)  # warm-up
    eps_off = best_eps(False)
    eps_on = best_eps(True)
    report(f"ENG-2 ping-pong arbiter on/off [heap]: "
           f"{eps_off:,.0f} / {eps_on:,.0f} events/s")
    perf_fields(workload="hotpath_pingpong", queue="heap",
                events_per_second=eps_on,
                events_per_second_arbiter_off=eps_off)
    assert eps_on >= 0.6 * eps_off, (
        f"arbiter machinery slowed the clock-free path: "
        f"{eps_off:,.0f} -> {eps_on:,.0f} events/s"
    )
