"""Fig. 10 — Application performance with different memory systems.

Paper result (SST + GeM5/x86 + DRAMSim2): across issue widths 1-8,
GDDR5 was 26-47% faster than DDR3 on Lulesh and 32-41% faster on HPCCG;
DDR2 trailed DDR3.  Performance differences grow with core width
(wider cores demand more bandwidth).

Shape assertions here: the GDDR5 > DDR3 > DDR2 ordering at every
(app, width) point; a GDDR5-over-DDR3 advantage in the tens of
percent that *grows* with width; and wider cores always faster.
Measured-vs-paper numbers are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis import ResultTable
from repro.dse import PAPER_TECHNOLOGIES, PAPER_WIDTHS, PAPER_WORKLOADS


def build_fig10_table(sweep):
    table = ResultTable(
        ["app", "width"] + [f"{t}_gips" for t in PAPER_TECHNOLOGIES]
        + ["gddr5_vs_ddr3", "ddr3_vs_ddr2"],
        title="Fig. 10 — performance (GIPS) by memory technology and issue width",
    )
    for app in PAPER_WORKLOADS:
        for width in PAPER_WIDTHS:
            row = {
                "app": app,
                "width": width,
            }
            for tech in PAPER_TECHNOLOGIES:
                row[f"{tech}_gips"] = sweep.point(app, width, tech).performance / 1e9
            row["gddr5_vs_ddr3"] = sweep.speedup(app, width, "GDDR5", "DDR3-1066")
            row["ddr3_vs_ddr2"] = sweep.speedup(app, width, "DDR3-1066", "DDR2-800")
            table.add_row(**row)
    return table


def test_fig10_memory_technology(benchmark, paper_sweep, report, save_csv):
    table = benchmark.pedantic(build_fig10_table, args=(paper_sweep,),
                               rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig10_memory_tech")

    for app in PAPER_WORKLOADS:
        gddr5_gains = []
        for width in PAPER_WIDTHS:
            ddr2 = paper_sweep.point(app, width, "DDR2-800")
            ddr3 = paper_sweep.point(app, width, "DDR3-1066")
            gddr5 = paper_sweep.point(app, width, "GDDR5")
            # Strict performance ordering at every point.
            assert gddr5.performance > ddr3.performance > ddr2.performance, \
                (app, width)
            gain = paper_sweep.speedup(app, width, "GDDR5", "DDR3-1066")
            gddr5_gains.append(gain)
            # Tens-of-percent advantage (paper: 26-47%; our model spans
            # ~14-82% across the width range — see EXPERIMENTS.md).
            assert 0.08 < gain < 0.95, (app, width, gain)
        # The advantage grows with width (more bandwidth demand).
        assert gddr5_gains[-1] > gddr5_gains[0], (app, gddr5_gains)

    # Wider is always faster on a given memory.
    for app in PAPER_WORKLOADS:
        for tech in PAPER_TECHNOLOGIES:
            perfs = [paper_sweep.point(app, w, tech).performance
                     for w in PAPER_WIDTHS]
            assert perfs == sorted(perfs), (app, tech)
