"""ENG-6 — causal-capture overhead: provenance tracing on vs off.

Causal tracing (PR 8, :mod:`repro.obs.causal`) rides the *instrumented*
dispatch path: with capture off the bare hot loop must be byte-for-byte
untouched, and with capture on the per-record cost is an interned-table
lookup plus a few list appends.  This bench runs the 1k-component
clocked fabric ENG-2/ENG-5 use, bare and with
:class:`repro.obs.CausalCapture` attached, and pins two gates:

* capture **off** leaves the engine uninstrumented (``sim._instr`` is
  ``None``) and the workload deterministic — the bare-dispatch
  throughput trajectory (``clocked_fabric/heap``) is unaffected by this
  PR;
* capture **on** sustains at least ``MIN_BASELINE_RATIO`` of the
  ``causal_fabric/heap`` baseline events/s recorded in
  ``benchmarks/throughput_baseline.json`` — a tighter leash than the
  generic 25% regression gate ``check_throughput_regression.py``
  applies to the same record.

The capture-on measurement lands in the ``engine_throughput``
trajectory (``BENCH_engine_throughput.json``) as ``causal_fabric/heap``.
"""

import json
from pathlib import Path

from repro.core import Component, Simulation
from repro.obs import CausalCapture
from repro.obs.critpath import load_causal

# Records land in the engine_throughput trajectory next to ENG-1/2/5's.
BENCH_RECORD_EXPERIMENT = "engine_throughput"

N_COMPONENTS = 1_000
N_TICKS = 200
ROUNDS = 3

#: the acceptance gate: causal-on throughput >= 90% of its baseline.
MIN_BASELINE_RATIO = 0.90

_BASELINE_FILE = Path(__file__).parent / "throughput_baseline.json"


def big_fabric(n_components=N_COMPONENTS, n_ticks=N_TICKS):
    sim = Simulation(seed=1, queue="heap")

    class Ticker(Component):
        def __init__(self, s, name, params=None):
            super().__init__(s, name, params)
            self.ticks = 0
            self.register_clock("1GHz", self.on_tick)

        def on_tick(self, cycle):
            self.ticks += 1
            return self.ticks >= n_ticks

    for i in range(n_components):
        Ticker(sim, f"t{i}")
    return sim


def _best_run(causal_base=None, rounds=ROUNDS):
    """Best events/second over ``rounds`` fresh runs (and the last
    RunResult plus the last simulation, for post-run inspection)."""
    best, result, sim = 0.0, None, None
    for i in range(rounds):
        sim = big_fabric()
        capture = None
        if causal_base is not None:
            capture = CausalCapture(Path(causal_base) / f"round{i}.jsonl")
            capture.attach(sim)
        result = sim.run()
        if capture is not None:
            capture.close()
        best = max(best, result.events_per_second)
    return best, result, sim


def test_eng6_causal_capture_overhead(report, perf_fields, tmp_path):
    baseline = json.loads(_BASELINE_FILE.read_text())["causal_fabric/heap"]
    bare_eps, bare, bare_sim = _best_run()
    causal_eps, causal, _ = _best_run(tmp_path)
    ratio = causal_eps / baseline
    report(f"ENG-6 causal-capture overhead: bare {bare_eps:,.0f} events/s, "
           f"capture on {causal_eps:,.0f} events/s "
           f"({causal_eps / bare_eps:.3f}x bare; "
           f"{ratio:.2f}x the {baseline:,} events/s baseline, "
           f"gate >= {MIN_BASELINE_RATIO})")
    perf_fields(causal, workload="causal_fabric", queue="heap",
                events_per_second=causal_eps,
                causal_over_bare=causal_eps / bare_eps)
    # Capture off leaves the bare path bare: no compiled instrumented
    # dispatcher, no causal hook, and the deterministic event count.
    assert bare_sim._instr is None
    assert bare_sim._causal is None
    assert bare.events_executed == causal.events_executed \
        == N_COMPONENTS * N_TICKS
    assert ratio >= MIN_BASELINE_RATIO


def test_eng6_capture_output_complete(report, tmp_path):
    """The capture the bench times is real: every dispatched record is a
    node in the shard, and the chain is walkable."""
    _best_run(tmp_path, rounds=1)
    graph = load_causal(tmp_path / "round0.jsonl")
    # The shared-clock arbiter collapses the 1000 member ticks of each
    # cycle into one dispatched record, so nodes == N_TICKS here while
    # events_executed == N_COMPONENTS * N_TICKS.
    assert len(graph.nodes) == N_TICKS
    chained = sum(1 for row in graph.nodes.values() if row[2] is not None)
    assert chained == N_TICKS - 1  # every tick but the first has a cause
    report(f"ENG-6 capture completeness: {len(graph.nodes)} arbiter-tick "
           f"nodes, {chained} causally chained")
