"""EXT-AMM — Abstract Machine Model accuracy vs the simulator (§5.1).

The paper's prediction ladder runs from back-of-envelope AMMs up to
simulation; their value depends on *agreement*.  This extension bench
quantifies it: per-iteration time for every halo app, analytically and
simulated, with the relative error; plus the evolve loop (fit the AMM's
network parameters from ping-pong simulations, check the refined model
predicts an unseen message size).
"""

import pytest

from repro.amm import (MachineModel, fit_from_simulation,
                       predict_halo_app_iteration_ps)
from repro.analysis import ResultTable
from repro.config import build
from repro.core.units import parse_size_bytes, parse_time
from repro.miniapps import (app_runtime_stats, build_app_machine,
                            grid_dims_3d, halo_neighbors_3d)
from repro.miniapps.apps import CTH, HPCCG, SAGE, Charon, Lulesh

APPS = {"CTH": CTH, "SAGE": SAGE, "Charon": Charon, "HPCCG": HPCCG,
        "Lulesh": Lulesh}
N_RANKS = 16
ITERATIONS = 3


def run_comparison():
    model = MachineModel()
    table = ResultTable(
        ["app", "simulated_us", "predicted_us", "rel_error"],
        title=f"EXT-AMM — analytic vs simulated iteration time "
              f"({N_RANKS} ranks)",
    )
    errors = {}
    for app_name, cls in APPS.items():
        graph = build_app_machine(f"miniapps.{app_name}", N_RANKS,
                                  iterations=ITERATIONS)
        sim = build(graph, seed=7)
        assert sim.run().reason == "exit"
        measured = app_runtime_stats(sim, N_RANKS)["runtime_ps"] / ITERATIONS

        defaults = cls.DEFAULTS
        neighbors = halo_neighbors_3d(0, grid_dims_3d(N_RANKS))
        predicted = predict_halo_app_iteration_ps(
            model, n_ranks=N_RANKS, n_neighbors=len(neighbors),
            msg_size=parse_size_bytes(defaults["msg_size"]),
            msgs_per_neighbor=defaults.get("msgs_per_neighbor", 1),
            compute_ps=parse_time(defaults["compute_ps"]),
            allreduces=defaults.get("allreduces", 0),
            overlap_fraction=defaults.get("overlap_fraction", 0.0),
        )
        error = (predicted - measured) / measured
        errors[app_name] = error
        table.add_row(app=app_name, simulated_us=measured / 1e6,
                      predicted_us=predicted / 1e6, rel_error=error)
    return errors, table


def test_ext_amm_accuracy(benchmark, report, save_csv):
    errors, table = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_amm_accuracy")
    for app, error in errors.items():
        assert abs(error) < 0.20, (app, error)
    # And the mean absolute error is tight.
    mean_abs = sum(abs(e) for e in errors.values()) / len(errors)
    assert mean_abs < 0.12, mean_abs


def test_ext_amm_evolve_loop(benchmark, report, save_csv):
    """Fit network parameters from simulation, verify on unseen size."""

    def run():
        nominal = MachineModel()
        fitted = fit_from_simulation(nominal)
        table = ResultTable(["parameter", "nominal", "fitted"],
                            title="EXT-AMM — the evolve loop (fitted from "
                                  "ping-pong simulations)")
        table.add_row(parameter="effective_bandwidth_GBs",
                      nominal=nominal.injection_bandwidth / 1e9,
                      fitted=fitted.injection_bandwidth / 1e9)
        table.add_row(parameter="latency_ns",
                      nominal=nominal.link_latency_ps / 1000,
                      fitted=fitted.link_latency_ps / 1000)
        return nominal, fitted, table

    nominal, fitted, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "ext_amm_fit")
    # Fitted effective bandwidth = inject+eject in series = nominal/2.
    assert fitted.injection_bandwidth == pytest.approx(
        nominal.injection_bandwidth / 2, rel=0.05)
