"""EXT-NOISE — OS-noise injection and collective amplification (paper §4).

The paper cites the kernel-level noise-injection study (its ref [24],
Ferreira et al., SC'08) as the canonical dedicated-system experiment:
inject controlled OS noise signatures and watch how applications
respond.  The headline findings, reproduced here on the simulator:

* at the *same net noise percentage*, rare long detours (low-frequency
  noise, e.g. kernel daemons) devastate fine-grained collective
  applications, while frequent tiny detours (timer ticks) are absorbed;
* coarse-grained bulk-synchronous apps absorb both;
* the amplification grows with scale — every collective waits for the
  unluckiest rank, and more ranks mean more bad luck per round.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine

NET_NOISE = 0.025  # 2.5% injected on every configuration
SIGNATURES = {
    "none": None,
    "2500Hz x 10us": {"noise_frequency": 2500, "noise_duration": "10us"},
    "10Hz x 2.5ms": {"noise_frequency": 10, "noise_duration": "2.5ms"},
}


def run_app(app, n_ranks, signature, seed):
    extra = dict(SIGNATURES[signature] or {})
    graph = build_app_machine(f"miniapps.{app}", n_ranks,
                              app_params=extra, iterations=5)
    sim = build(graph, seed=seed)
    assert sim.run().reason == "exit"
    return app_runtime_stats(sim, n_ranks)["runtime_ps"]


def mean_slowdown(app, n_ranks, signature, seeds=(11, 23, 47)):
    ratios = []
    for seed in seeds:
        base = run_app(app, n_ranks, "none", seed)
        noisy = run_app(app, n_ranks, signature, seed)
        ratios.append(noisy / base - 1.0)
    return sum(ratios) / len(ratios)


def run_signature_study():
    table = ResultTable(
        ["app", "signature", "slowdown"],
        title=f"EXT-NOISE — slowdown at {NET_NOISE:.1%} net injected noise "
              "(32 ranks)",
    )
    results = {}
    for app in ("HPCCG", "Charon", "CTH"):
        for signature in ("2500Hz x 10us", "10Hz x 2.5ms"):
            slowdown = mean_slowdown(app, 32, signature)
            results[(app, signature)] = slowdown
            table.add_row(app=app, signature=signature, slowdown=slowdown)
    return results, table


def run_scale_study():
    table = ResultTable(
        ["ranks", "slowdown_low_freq"],
        title="EXT-NOISE — low-frequency-noise amplification vs scale "
              "(HPCCG)",
    )
    results = {}
    for n_ranks in (8, 32, 128):
        slowdown = mean_slowdown("HPCCG", n_ranks, "10Hz x 2.5ms",
                                 seeds=(11, 23, 47, 61))
        results[n_ranks] = slowdown
        table.add_row(ranks=n_ranks, slowdown_low_freq=slowdown)
    return results, table


def test_ext_noise_signatures(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_signature_study, rounds=1,
                                        iterations=1)
    report(table)
    save_csv(table, "ext_noise_signatures")

    # Fine-grained collectives amplify low-frequency noise far beyond
    # its 2.5% net injection...
    assert results[("HPCCG", "10Hz x 2.5ms")] > 0.25
    assert results[("Charon", "10Hz x 2.5ms")] > 0.10
    # ...while the same net noise at high frequency is mostly absorbed.
    assert results[("HPCCG", "2500Hz x 10us")] < 0.15
    # Coarse-grained CTH absorbs both signatures.
    assert results[("CTH", "10Hz x 2.5ms")] < 0.25
    assert results[("CTH", "2500Hz x 10us")] < 0.10
    # The shape claim: per app, low-frequency >= high-frequency impact.
    for app in ("HPCCG", "Charon", "CTH"):
        assert results[(app, "10Hz x 2.5ms")] >= \
            results[(app, "2500Hz x 10us")] - 0.02, app


def test_ext_noise_scale_amplification(benchmark, report, save_csv):
    results, table = benchmark.pedantic(run_scale_study, rounds=1,
                                        iterations=1)
    report(table)
    save_csv(table, "ext_noise_scale")
    # Amplification grows with scale (the exascale warning of §4).
    assert results[128] > results[8] + 0.2
    assert results[128] > results[32]
