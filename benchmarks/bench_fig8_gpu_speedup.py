"""Fig. 8 — Speedup of the miniFE CUDA implementation (Fermi vs hex-core Xeon).

Paper result: the assembly (FEA) phase realises ~4x, the solve phase
~3x, and matrix-structure generation shows a *slowdown* (it is computed
on the host in CSR, shipped over PCIe and converted to ELL on the
device).  The FEA kernel is bandwidth-bound because ~512 B of
per-thread element-operator state spills past the 63-register budget.

Shape assertions: the three speedups land in bands around the paper's
values with the right ordering; the FEA kernel is bandwidth-bound with
substantial spilling; the §3.4 tuning (symmetry + shared memory)
helps; and a Kepler-like device (more registers, bigger caches — the
paper's "future generations" paragraph) removes the spill entirely.
"""

import pytest

from repro.analysis import ResultTable
from repro.miniapps import MiniFEGpuStudy
from repro.processor import KEPLER_LIKE

PROBLEM_N = 64


def run_fig8():
    study = MiniFEGpuStudy(PROBLEM_N)
    phases = study.table()
    table = ResultTable(["phase", "cpu_ms", "gpu_ms", "speedup"],
                        title=f"Fig. 8 — miniFE CUDA speedups (N={PROBLEM_N}^3 "
                              "elements, Fermi M2090 vs hex-core E5-2680)")
    for name, cmp in phases.items():
        table.add_row(phase=name, cpu_ms=cmp.cpu_time_s * 1e3,
                      gpu_ms=cmp.gpu_time_s * 1e3, speedup=cmp.speedup)
    return study, phases, table


def test_fig8_phase_speedups(benchmark, report, save_csv):
    study, phases, table = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig8_gpu_speedup")

    # Paper: assembly ~4x, solve ~3x, structure-gen a slowdown.
    assert 3.0 <= phases["fea"].speedup <= 6.0, phases["fea"].speedup
    assert 2.0 <= phases["solve"].speedup <= 4.0, phases["solve"].speedup
    assert phases["structure"].speedup < 1.0
    assert phases["fea"].speedup > phases["solve"].speedup \
        > phases["structure"].speedup

    # Mechanism: the FEA kernel spills heavily and goes bandwidth-bound.
    estimate = study.fea_estimate(tuned=True)
    assert estimate.bandwidth_bound
    assert estimate.spill_bytes_per_thread > 250  # paper: ~512B spilled
    assert estimate.spill_traffic_bytes > 0


def test_fig8_tuning_and_future_hardware(benchmark, report):
    def ablation():
        fermi = MiniFEGpuStudy(PROBLEM_N)
        kepler = MiniFEGpuStudy(PROBLEM_N, gpu=KEPLER_LIKE)
        table = ResultTable(
            ["configuration", "spill_bytes", "fea_runtime_ms", "fea_speedup"],
            title="Fig. 8 ablation — tuning and future-hardware what-if",
        )
        naive = fermi.fea_estimate(tuned=False)
        tuned = fermi.fea_estimate(tuned=True)
        kepler_est = kepler.fea_estimate(tuned=True)
        table.add_row(configuration="fermi/naive",
                      spill_bytes=naive.spill_bytes_per_thread,
                      fea_runtime_ms=naive.runtime_s * 1e3,
                      fea_speedup=fermi.fea(tuned=False).speedup)
        table.add_row(configuration="fermi/tuned",
                      spill_bytes=tuned.spill_bytes_per_thread,
                      fea_runtime_ms=tuned.runtime_s * 1e3,
                      fea_speedup=fermi.fea(tuned=True).speedup)
        table.add_row(configuration="kepler-like/tuned",
                      spill_bytes=kepler_est.spill_bytes_per_thread,
                      fea_runtime_ms=kepler_est.runtime_s * 1e3,
                      fea_speedup=kepler.fea(tuned=True).speedup)
        return fermi, kepler, table

    fermi, kepler, table = benchmark.pedantic(ablation, rounds=1, iterations=1)
    report(table)

    # The §3.4 optimizations reduce spilling and runtime.
    assert fermi.fea_estimate(tuned=True).runtime_s < \
        fermi.fea_estimate(tuned=False).runtime_s
    # "Future generations ... increased number of registers per thread
    # and increases in the size of L1 and L2": spill disappears.
    assert kepler.fea_estimate().spill_bytes_per_thread == 0
    assert kepler.fea().speedup > fermi.fea().speedup
