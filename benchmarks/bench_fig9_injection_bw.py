"""Fig. 9 — Application sensitivity to network injection bandwidth.

Paper result (160-node Cray XT5, firmware-throttled NICs at full/half/
quarter/eighth of 3.2 GB/s): each application responds differently —

* **Charon** (many small messages, latency-bound) is essentially
  unimpacted: its network power could be cut with no performance cost;
* **CTH** and **SAGE** (large halo messages that must complete before
  the next step) degrade strongly: over 2x slowdown for CTH at 1/8;
* **xNOBEL** overlaps communication with computation, staying flat at
  small scale but falling off past a core-count threshold (the paper:
  past 384 cores) where shrinking per-rank compute can no longer hide
  the messages.

Shape assertions: the slowdown table reproduces those four signatures,
and the xNOBEL falloff grows with core count.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine

BANDWIDTHS = ["3.2GB/s", "1.6GB/s", "0.8GB/s", "0.4GB/s"]
BW_LABELS = ["full", "half", "quarter", "eighth"]
APPS = ("CTH", "SAGE", "XNOBEL", "Charon")
N_RANKS = 32
ITERATIONS = 3


def run_app(app, bandwidth, n_ranks=N_RANKS):
    graph = build_app_machine(f"miniapps.{app}", n_ranks,
                              injection_bandwidth=bandwidth,
                              iterations=ITERATIONS)
    sim = build(graph, seed=7)
    result = sim.run()
    assert result.reason == "exit", (app, bandwidth, result.reason)
    return app_runtime_stats(sim, n_ranks)["runtime_ps"]


def run_fig9():
    slowdowns = {}
    for app in APPS:
        base = run_app(app, BANDWIDTHS[0])
        slowdowns[app] = [run_app(app, bw) / base for bw in BANDWIDTHS]
    table = ResultTable(["app"] + BW_LABELS,
                        title="Fig. 9 — slowdown vs full injection bandwidth "
                              f"({N_RANKS} ranks, 3-D torus)")
    for app in APPS:
        table.add_row(app=app, **dict(zip(BW_LABELS, slowdowns[app])))
    return slowdowns, table


def run_xnobel_falloff():
    """The 'past 384 cores' effect, scaled to our rank counts."""
    rows = []
    for n_ranks in (16, 32, 64, 128):
        full = run_app("XNOBEL", "3.2GB/s", n_ranks)
        quarter = run_app("XNOBEL", "0.8GB/s", n_ranks)
        rows.append((n_ranks, quarter / full))
    table = ResultTable(["ranks", "slowdown_at_quarter"],
                        title="Fig. 9 (xNOBEL) — overlap-loss falloff with scale")
    for n_ranks, slowdown in rows:
        table.add_row(ranks=n_ranks, slowdown_at_quarter=slowdown)
    return dict(rows), table


def test_fig9_injection_bandwidth(benchmark, report, save_csv):
    slowdowns, table = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig9_injection_bw")

    cth, sage, xnobel, charon = (slowdowns[a] for a in APPS)
    # Normalisation.
    for series in (cth, sage, xnobel, charon):
        assert series[0] == pytest.approx(1.0)
        # Less bandwidth never helps.
        assert series == sorted(series)

    # Charon: essentially unimpacted (paper's headline insensitivity).
    assert charon[-1] < 1.15, charon
    # CTH: over a factor of two at 1/8 (paper); accept 1.8-3.0.
    assert 1.8 < cth[-1] < 3.0, cth
    # SAGE: strongly impacted, comparable to CTH.
    assert 1.6 < sage[-1] < 3.0, sage
    # The per-app ordering of sensitivity.
    assert cth[-1] > charon[-1]
    assert sage[-1] > charon[-1]
    # xNOBEL at this (small) scale: overlap still hides half-bandwidth.
    assert xnobel[1] < 1.05, xnobel


def test_fig9_xnobel_falloff_with_scale(benchmark, report, save_csv):
    falloff, table = benchmark.pedantic(run_xnobel_falloff, rounds=1,
                                        iterations=1)
    report(table)
    save_csv(table, "fig9_xnobel_falloff")

    # Flat at small scale; degradation appears and grows past the
    # crossover (paper: past 384 cores on the XT5; scaled here).
    assert falloff[16] < 1.05
    assert falloff[128] > 1.3
    assert falloff[128] > falloff[64] >= falloff[32] >= falloff[16] - 1e-9
