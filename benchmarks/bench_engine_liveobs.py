"""ENG-5 — live observability overhead: publishing on vs off.

The live plane (PR 6) publishes per-rank engine state into a
shared-memory segment from kernel boundaries and a sampler thread —
deliberately *not* from a per-event observer — so enabling it must not
tax the hot path.  This bench runs the same 1k-component clocked
fabric ENG-2 uses, bare and with :class:`repro.obs.live.LiveMetrics`
attached, and asserts the acceptance gate: live publishing costs at
most 5% of events/second (best-of-N on both sides to shed scheduler
noise).  The live-on measurement also lands in the
``engine_throughput`` trajectory (``BENCH_engine_throughput.json``) as
``liveobs_fabric/heap``, where
``benchmarks/check_throughput_regression.py`` gates CI on it.
"""

from repro.core import Component, Simulation
from repro.obs.live import STATE_DONE, LiveMetrics, LiveView

# Records land in the engine_throughput trajectory next to ENG-1/2's.
BENCH_RECORD_EXPERIMENT = "engine_throughput"

N_COMPONENTS = 1_000
N_TICKS = 200
ROUNDS = 3

#: the acceptance gate: live-on throughput >= 95% of bare.
MAX_OVERHEAD = 0.05


def big_fabric(n_components=N_COMPONENTS, n_ticks=N_TICKS):
    sim = Simulation(seed=1, queue="heap")

    class Ticker(Component):
        def __init__(self, s, name, params=None):
            super().__init__(s, name, params)
            self.ticks = 0
            self.register_clock("1GHz", self.on_tick)

        def on_tick(self, cycle):
            self.ticks += 1
            return self.ticks >= n_ticks

    for i in range(n_components):
        Ticker(sim, f"t{i}")
    return sim


def _best_run(live_path=None, rounds=ROUNDS):
    """Best events/second over ``rounds`` fresh runs (and the last
    RunResult, whose event count is deterministic)."""
    best, result = 0.0, None
    for _ in range(rounds):
        sim = big_fabric()
        live = (LiveMetrics(live_path, interval_s=0.1).attach(sim)
                if live_path is not None else None)
        result = sim.run()
        if live is not None:
            live.finalize(result)
        best = max(best, result.events_per_second)
    return best, result


def test_eng5_live_publishing_overhead(report, perf_fields, tmp_path):
    bare_eps, bare = _best_run()
    live_eps, live = _best_run(tmp_path / "liveobs.live")
    ratio = live_eps / bare_eps
    report(f"ENG-5 live-obs overhead: bare {bare_eps:,.0f} events/s, "
           f"live {live_eps:,.0f} events/s "
           f"(ratio {ratio:.3f}, gate >= {1 - MAX_OVERHEAD})")
    perf_fields(live, workload="liveobs_fabric", queue="heap",
                events_per_second=live_eps, live_over_bare=ratio)
    # Same deterministic workload either way.
    assert bare.events_executed == live.events_executed \
        == N_COMPONENTS * N_TICKS
    assert ratio >= 1 - MAX_OVERHEAD


def test_eng5_live_segment_left_finalized(report, tmp_path):
    """The attach/finalize cycle leaves a readable post-mortem segment."""
    seg = tmp_path / "post.live"
    _best_run(seg, rounds=1)
    view = LiveView(seg)
    snapshot = view.snapshot()
    view.close()
    slot = snapshot["ranks"][0]
    assert slot["state"] == STATE_DONE
    assert slot["events"] == N_COMPONENTS * N_TICKS
    assert snapshot["run"]["state"] == STATE_DONE
    report(f"ENG-5 post-mortem segment: rank 0 closed at "
           f"{slot['events']} events, state done")
