"""ENG-2 — Conservative parallel engine: partitioners, lookahead, epochs.

SST's scalability story rests on (a) partition quality — fewer and
higher-latency cut links mean fewer cross-rank events and a bigger
conservative lookahead — and (b) the sync protocol's epoch overhead.
This bench measures both on a realistic machine (a miniapp on a 3-D
torus):

* edge-cut / cut-latency / imbalance for each partition strategy;
* epochs, exchanged events and wall time for parallel runs of the same
  machine under each strategy;
* lookahead sensitivity: the epoch count scales with the inverse of
  the smallest cut-link latency.
"""

import pytest

from repro.analysis import ResultTable
from repro.config import build, build_parallel
from repro.core.partition import STRATEGIES, partition
from repro.miniapps import build_app_machine

N_RANKS_APP = 16
SIM_RANKS = 4


def machine():
    return build_app_machine("miniapps.HPCCG", N_RANKS_APP, iterations=2)


def test_eng2_partition_quality(benchmark, report, save_csv):
    def run():
        graph = machine()
        nodes, edges, weights = graph.partition_inputs()
        table = ResultTable(
            ["strategy", "edge_cut", "cut_edges", "min_cut_latency_ns",
             "imbalance"],
            title=f"ENG-2 — partition quality ({len(nodes)} components, "
                  f"{SIM_RANKS} ranks)",
        )
        results = {}
        for strategy in STRATEGIES:
            r = partition(nodes, edges, SIM_RANKS, strategy=strategy,
                          weights=weights)
            results[strategy] = r
            table.add_row(strategy=strategy, edge_cut=r.edge_cut,
                          cut_edges=r.cut_edges,
                          min_cut_latency_ns=(r.min_cut_latency or 0) / 1000,
                          imbalance=r.imbalance)
        return results, table

    results, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_partition_quality")

    # Locality-aware partitioners beat round-robin on cut.
    assert results["bfs"].edge_cut < results["round_robin"].edge_cut
    assert results["kl"].edge_cut <= results["bfs"].edge_cut
    # All stay reasonably balanced.
    for strategy, r in results.items():
        assert r.imbalance < 1.6, (strategy, r.imbalance)


def test_eng2_protocol_overhead_by_strategy(benchmark, report, save_csv):
    def run():
        table = ResultTable(
            ["strategy", "epochs", "remote_events", "lookahead_ns",
             "events", "wall_s"],
            title="ENG-2 — parallel runs of the same machine by strategy",
        )
        rows = {}
        for strategy in STRATEGIES:
            psim = build_parallel(machine(), SIM_RANKS, strategy=strategy,
                                  seed=2)
            result = psim.run()
            assert result.reason == "exit", strategy
            rows[strategy] = result
            table.add_row(strategy=strategy, epochs=result.epochs,
                          remote_events=result.remote_events,
                          lookahead_ns=result.lookahead / 1000,
                          events=result.events_executed,
                          wall_s=result.wall_seconds)
        return rows, table

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_protocol_overhead")

    # Total event count is partition-invariant (same simulation!).
    events = {r.events_executed for r in rows.values()}
    assert len(events) == 1
    # Fewer cut links => fewer cross-rank events.
    assert rows["bfs"].remote_events <= rows["round_robin"].remote_events


def test_eng2_lookahead_drives_epoch_count(benchmark, report, save_csv):
    """Same design, progressively shorter cross-rank link latency: the
    conservative window shrinks and the epoch count rises."""
    from repro.core import Component, Event, ParallelSimulation, Params

    class PingPong(Component):
        def __init__(self, sim, name, params=None):
            super().__init__(sim, name, params)
            self.quota = self.params.find_int("n_round_trips", 10)
            self.initiator = self.params.find_bool("initiator", False)
            self.received = self.stats.counter("received")
            self.set_handler("io", self.on_token)
            if self.initiator:
                self.register_as_primary()

        def setup(self):
            if self.initiator:
                self.send("io", Event())

        def on_token(self, event):
            self.received.add()
            if self.initiator and self.received.count >= self.quota:
                self.primary_ok_to_end()
                return
            self.send("io", event)

    def run():
        table = ResultTable(["latency_ns", "lookahead_ns", "epochs"],
                            title="ENG-2 — epoch count vs lookahead")
        rows = {}
        for latency in ("100ns", "20ns", "5ns"):
            psim = ParallelSimulation(2, seed=1)
            a = PingPong(psim.rank_sim(0), "ping",
                         Params({"initiator": True, "n_round_trips": 50}))
            b = PingPong(psim.rank_sim(1), "pong", Params({}))
            psim.connect(a, "io", b, "io", latency=latency)
            result = psim.run()
            rows[latency] = result
            table.add_row(latency_ns=int(latency[:-2]),
                          lookahead_ns=result.lookahead / 1000,
                          epochs=result.epochs)
        return rows, table

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_lookahead")

    # Lookahead equals the link latency; equal event counts throughout.
    assert rows["100ns"].lookahead == 100_000
    assert rows["5ns"].lookahead == 5_000
    assert rows["100ns"].events_executed == rows["5ns"].events_executed
    # For this design one epoch covers one one-way flight regardless of
    # latency; the protocol invariant is epochs >= messages / window.
    for result in rows.values():
        assert result.epochs >= 1


@pytest.mark.parametrize("backend", ["serial", "threads"])
def test_eng2_backend_wall_time(benchmark, backend, report):
    """Wall-time of the two execution backends (GIL caveat recorded)."""

    def run():
        psim = build_parallel(machine(), SIM_RANKS, strategy="bfs",
                              backend=backend, seed=2)
        result = psim.run()
        psim.close()
        return result

    result = benchmark(run)
    report(f"ENG-2 backend={backend}: {result.events_executed} events in "
           f"{result.wall_seconds:.3f}s wall, {result.epochs} epochs")
    assert result.reason == "exit"
