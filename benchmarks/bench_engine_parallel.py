"""ENG-2 — Conservative parallel engine: partitioners, lookahead, epochs.

SST's scalability story rests on (a) partition quality — fewer and
higher-latency cut links mean fewer cross-rank events and a bigger
conservative lookahead — and (b) the sync protocol's epoch overhead.
This bench measures both on a realistic machine (a miniapp on a 3-D
torus):

* edge-cut / cut-latency / imbalance for each partition strategy;
* epochs, exchanged events and wall time for parallel runs of the same
  machine under each strategy;
* lookahead sensitivity: the epoch count scales with the inverse of
  the smallest cut-link latency.
"""

import os
from pathlib import Path

import pytest

from repro.analysis import ResultTable
from repro.config import build, build_parallel
from repro.core.partition import STRATEGIES, partition
from repro.miniapps import build_app_machine

N_RANKS_APP = 16
SIM_RANKS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def machine():
    return build_app_machine("miniapps.HPCCG", N_RANKS_APP, iterations=2)


def test_eng2_partition_quality(benchmark, report, save_csv):
    def run():
        graph = machine()
        nodes, edges, weights = graph.partition_inputs()
        table = ResultTable(
            ["strategy", "edge_cut", "cut_edges", "min_cut_latency_ns",
             "imbalance"],
            title=f"ENG-2 — partition quality ({len(nodes)} components, "
                  f"{SIM_RANKS} ranks)",
        )
        results = {}
        for strategy in STRATEGIES:
            r = partition(nodes, edges, SIM_RANKS, strategy=strategy,
                          weights=weights)
            results[strategy] = r
            table.add_row(strategy=strategy, edge_cut=r.edge_cut,
                          cut_edges=r.cut_edges,
                          min_cut_latency_ns=(r.min_cut_latency or 0) / 1000,
                          imbalance=r.imbalance)
        return results, table

    results, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_partition_quality")

    # Locality-aware partitioners beat round-robin on cut.
    assert results["bfs"].edge_cut < results["round_robin"].edge_cut
    assert results["kl"].edge_cut <= results["bfs"].edge_cut
    # All stay reasonably balanced.
    for strategy, r in results.items():
        assert r.imbalance < 1.6, (strategy, r.imbalance)


def test_eng2_protocol_overhead_by_strategy(benchmark, report, save_csv):
    def run():
        table = ResultTable(
            ["strategy", "epochs", "remote_events", "lookahead_ns",
             "events", "wall_s"],
            title="ENG-2 — parallel runs of the same machine by strategy",
        )
        rows = {}
        for strategy in STRATEGIES:
            psim = build_parallel(machine(), SIM_RANKS, strategy=strategy,
                                  seed=2)
            result = psim.run()
            assert result.reason == "exit", strategy
            rows[strategy] = result
            table.add_row(strategy=strategy, epochs=result.epochs,
                          remote_events=result.remote_events,
                          lookahead_ns=result.lookahead / 1000,
                          events=result.events_executed,
                          wall_s=result.wall_seconds)
        return rows, table

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_protocol_overhead")

    # Total event count is partition-invariant (same simulation!).
    events = {r.events_executed for r in rows.values()}
    assert len(events) == 1
    # Fewer cut links => fewer cross-rank events.
    assert rows["bfs"].remote_events <= rows["round_robin"].remote_events


def test_eng2_lookahead_drives_epoch_count(benchmark, report, save_csv):
    """Same design, progressively shorter cross-rank link latency: the
    conservative window shrinks and the epoch count rises."""
    from repro.core import Component, Event, ParallelSimulation, Params

    class PingPong(Component):
        def __init__(self, sim, name, params=None):
            super().__init__(sim, name, params)
            self.quota = self.params.find_int("n_round_trips", 10)
            self.initiator = self.params.find_bool("initiator", False)
            self.received = self.stats.counter("received")
            self.set_handler("io", self.on_token)
            if self.initiator:
                self.register_as_primary()

        def setup(self):
            if self.initiator:
                self.send("io", Event())

        def on_token(self, event):
            self.received.add()
            if self.initiator and self.received.count >= self.quota:
                self.primary_ok_to_end()
                return
            self.send("io", event)

    def run():
        table = ResultTable(["latency_ns", "lookahead_ns", "epochs"],
                            title="ENG-2 — epoch count vs lookahead")
        rows = {}
        for latency in ("100ns", "20ns", "5ns"):
            psim = ParallelSimulation(2, seed=1)
            a = PingPong(psim.rank_sim(0), "ping",
                         Params({"initiator": True, "n_round_trips": 50}))
            b = PingPong(psim.rank_sim(1), "pong", Params({}))
            psim.connect(a, "io", b, "io", latency=latency)
            result = psim.run()
            rows[latency] = result
            table.add_row(latency_ns=int(latency[:-2]),
                          lookahead_ns=result.lookahead / 1000,
                          epochs=result.epochs)
        return rows, table

    rows, table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    save_csv(table, "eng2_lookahead")

    # Lookahead equals the link latency; equal event counts throughout.
    assert rows["100ns"].lookahead == 100_000
    assert rows["5ns"].lookahead == 5_000
    assert rows["100ns"].events_executed == rows["5ns"].events_executed
    # For this design one epoch covers one one-way flight regardless of
    # latency; the protocol invariant is epochs >= messages / window.
    for result in rows.values():
        assert result.epochs >= 1


@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_eng2_backend_wall_time(benchmark, backend, report):
    """Wall-time of the three execution backends (GIL caveat recorded)."""

    def run():
        psim = build_parallel(machine(), SIM_RANKS, strategy="bfs",
                              backend=backend, seed=2)
        result = psim.run()
        psim.close()
        return result

    result = benchmark(run)
    report(f"ENG-2 backend={backend}: {result.events_executed} events in "
           f"{result.wall_seconds:.3f}s wall, {result.epochs} epochs")
    assert result.reason == "exit"


def test_eng2_processes_backend_equivalence(benchmark, report):
    """Acceptance gate for the processes backend: bit-identical stats
    to the serial reference on the ENG-2 machine at 4 ranks."""

    def run():
        serial = build_parallel(machine(), SIM_RANKS, strategy="bfs", seed=2)
        serial_result = serial.run()
        procs = build_parallel(machine(), SIM_RANKS, strategy="bfs", seed=2,
                               backend="processes")
        procs_result = procs.run()
        return serial, serial_result, procs, procs_result

    serial, serial_result, procs, procs_result = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert serial_result.reason == "exit"
    assert procs_result.reason == "exit"
    assert procs_result.end_time == serial_result.end_time
    assert procs_result.events_executed == serial_result.events_executed
    assert procs_result.epochs == serial_result.epochs
    assert procs_result.remote_events == serial_result.remote_events
    assert procs.stat_values() == serial.stat_values()
    report(f"ENG-2 processes==serial: {procs_result.events_executed} events, "
           f"{len(procs.stat_values())} statistics identical")


def _heavy_compute_machine(psim, *, ticks=30, work=40_000):
    """One compute-bound component per rank plus a high-latency ring.

    Per-event work dominates and the ring's 1 ms latency makes the
    conservative window huge, so the run is a few fat epochs — the
    workload shape where a multi-process backend can actually show
    wall-clock scaling.
    """
    from repro.core import Component, Event, Params

    class HeavyWorker(Component):
        def __init__(self, sim, name, params=None):
            super().__init__(sim, name, params)
            self.ticks = self.params.find_int("ticks", 10)
            self.work = self.params.find_int("work", 1000)
            self.done = self.stats.counter("done")
            self.checksum = self.stats.accumulator("checksum")
            self.set_handler("in", self.on_event)

        def setup(self):
            self.schedule(1000, self._tick)

        def _tick(self, _):
            acc = 0
            for i in range(self.work):
                acc += i * i
            self.checksum.add(acc % 1_000_003)
            self.done.add()
            if self.done.count < self.ticks:
                self.schedule(1000, self._tick)

        def on_event(self, event):
            pass

    workers = [
        HeavyWorker(psim.rank_sim(r), f"w{r}",
                    Params({"ticks": ticks, "work": work}))
        for r in range(psim.num_ranks)
    ]
    for r in range(psim.num_ranks):
        psim.connect(workers[r], "ring_out",
                     workers[(r + 1) % psim.num_ranks], "in", latency="1ms")
    return workers


def test_eng2_rank_telemetry_overhead(benchmark, tmp_path, report):
    """Rank-local telemetry cost on the processes backend, recorded to
    BENCH_engine_parallel.json.

    Runs the compute-bound 4-rank design bare and again with a
    TelemetryRecorder + HandlerProfiler attached (per-rank shards,
    worker-side span buckets), then checks the instrumented run still
    produced complete artifacts.  The overhead ratio is recorded, not
    asserted — shard IO cost is host-dependent — but the artifact
    completeness is the regression gate.
    """
    from repro.core import ParallelSimulation
    from repro.obs import HandlerProfiler, TelemetryRecorder, environment_info
    from repro.obs.manifest import append_json_record
    from repro.obs.merge import find_rank_shards

    metrics = tmp_path / "eng2-rank.jsonl"

    def run_once(instrumented):
        psim = ParallelSimulation(SIM_RANKS, seed=3, backend="processes")
        _heavy_compute_machine(psim)
        telemetry = profiler = None
        if instrumented:
            telemetry = TelemetryRecorder(metrics).attach(psim)
            profiler = HandlerProfiler(psim)
        result = psim.run()
        assert result.reason == "exhausted"
        if instrumented:
            telemetry.finalize(result)
            profiler.detach()
        return result, profiler

    def run():
        bare, _ = run_once(False)
        instrumented, profiler = run_once(True)
        return bare, instrumented, profiler

    bare, instrumented, profiler = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    shards = find_rank_shards(metrics)
    assert sorted(shards) == list(range(SIM_RANKS))
    assert sum(row.count for row in profiler.rows()) == \
        instrumented.events_executed
    assert {row.rank for row in profiler.rows()} == set(range(SIM_RANKS))
    overhead = (instrumented.wall_seconds / bare.wall_seconds
                if bare.wall_seconds else 1.0)
    append_json_record(
        Path(__file__).parent.parent / "BENCH_engine_parallel.json",
        {
            "schema": "repro-bench-record/1",
            "experiment": "engine_parallel",
            "test": "eng2_rank_telemetry_overhead",
            "kind": "rank_telemetry_overhead",
            "ranks": SIM_RANKS,
            "bare_wall_seconds": bare.wall_seconds,
            "instrumented_wall_seconds": instrumented.wall_seconds,
            "overhead_ratio": overhead,
            "rank_shards": len(shards),
            "events": instrumented.events_executed,
            "environment": environment_info(),
        },
    )
    report(f"ENG-2 rank telemetry at {SIM_RANKS} ranks: "
           f"{overhead:.2f}x wall overhead, {len(shards)} shards")


def test_eng2_processes_speedup(benchmark, report):
    """Wall-clock scaling of the processes backend on a compute-bound
    4-rank design, recorded to BENCH_engine_parallel.json.

    Best-of-3 per backend (forks and page-cache warmup make single
    shots noisy).  The speedup is always *recorded*, annotated with the
    sched-affinity CPU count; it is only *asserted* > 1 when the host
    actually has at least as many usable cores as ranks — gating a
    4-rank fork fleet on a 1- or 2-core container measures
    oversubscription, not the backend.
    """
    from repro.core import ParallelSimulation
    from repro.obs import environment_info
    from repro.obs.manifest import append_json_record

    ROUNDS = 3

    def run_backend(backend):
        stats, best = None, None
        for _ in range(ROUNDS):
            psim = ParallelSimulation(SIM_RANKS, seed=3, backend=backend)
            _heavy_compute_machine(psim)
            result = psim.run()
            assert result.reason == "exhausted"
            stats = psim.stat_values()
            psim.close()
            if best is None or result.wall_seconds < best.wall_seconds:
                best = result
        return stats, best

    def run():
        serial_stats, serial_result = run_backend("serial")
        procs_stats, procs_result = run_backend("processes")
        assert procs_stats == serial_stats
        return serial_result, procs_result

    serial_result, procs_result = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    cpus = _usable_cpus()
    speedup = serial_result.wall_seconds / procs_result.wall_seconds
    append_json_record(
        Path(__file__).parent.parent / "BENCH_engine_parallel.json",
        {
            "schema": "repro-bench-record/1",
            "experiment": "engine_parallel",
            "test": "eng2_processes_speedup",
            "kind": "backend_speedup",
            "ranks": SIM_RANKS,
            "usable_cpus": cpus,
            "rounds": ROUNDS,
            "serial_wall_seconds": serial_result.wall_seconds,
            "processes_wall_seconds": procs_result.wall_seconds,
            "speedup": speedup,
            "epochs": procs_result.epochs,
            "events": procs_result.events_executed,
            "environment": environment_info(),
        },
    )
    report(f"ENG-2 processes speedup over serial at {SIM_RANKS} ranks: "
           f"{speedup:.2f}x (best of {ROUNDS}, {cpus} usable CPUs)")
    if cpus >= SIM_RANKS:
        assert speedup > 1.0, (
            f"processes backend slower than serial on a {cpus}-core host: "
            f"{speedup:.2f}x"
        )


FABRIC_RANKS = 8
FABRIC_COMPONENTS = 1000


def _fabric_machine(psim, *, components=FABRIC_COMPONENTS, ticks=3,
                    work=300):
    """~1k compute components spread across the ranks, ring-linked.

    Every component self-schedules ``ticks`` compute windows; the first
    component of each rank additionally tokens the next rank over a
    1 ms ring link each tick, so the shm exchange path carries real
    cross-rank traffic while the conservative window stays wide.
    """
    from repro.core import Component, Event, Params

    class FabricWorker(Component):
        def __init__(self, sim, name, params=None):
            super().__init__(sim, name, params)
            self.ticks = self.params.find_int("ticks", 3)
            self.work = self.params.find_int("work", 300)
            self.emit = self.params.find_bool("emit", False)
            self.done = self.stats.counter("done")
            self.tokens = self.stats.counter("tokens")
            self.checksum = self.stats.accumulator("checksum")
            self.set_handler("in", self.on_token)

        def setup(self):
            self.schedule(1000, self._tick)

        def _tick(self, _):
            acc = 0
            for i in range(self.work):
                acc += i * i
            self.checksum.add(acc % 1_000_003)
            self.done.add()
            if self.emit:
                self.send("ring_out", Event())
            if self.done.count < self.ticks:
                self.schedule(1000, self._tick)

        def on_token(self, event):
            self.tokens.add()

    num_ranks = psim.num_ranks
    per_rank = components // num_ranks
    firsts = []
    for rank in range(num_ranks):
        sim = psim.rank_sim(rank)
        for i in range(per_rank):
            worker = FabricWorker(
                sim, f"r{rank}w{i}",
                Params({"ticks": ticks, "work": work, "emit": i == 0}))
            if i == 0:
                firsts.append(worker)
    for rank in range(num_ranks):
        psim.connect(firsts[rank], "ring_out",
                     firsts[(rank + 1) % num_ranks], "in", latency="1ms")
    return firsts


def test_eng2_parallel_fabric_speedup(benchmark, report):
    """The PR 9 acceptance bench: an 8-rank ~1k-component fabric on the
    processes backend with the shm transport and adaptive lookahead,
    against the serial reference.

    Records ``workload=parallel_fabric queue=shm`` into
    BENCH_engine_throughput.json so the CI parallel-speedup job can
    gate events/sec through check_throughput_regression.py
    (``--only parallel_fabric``).  The >= 3x speedup target is asserted
    only when the host exposes at least FABRIC_RANKS usable CPUs; the
    measurement is recorded either way.
    """
    from repro.core import ParallelSimulation
    from repro.obs import environment_info
    from repro.obs.manifest import append_json_record

    ROUNDS = 3

    def run_backend(backend, **kwargs):
        stats, best = None, None
        for _ in range(ROUNDS):
            psim = ParallelSimulation(FABRIC_RANKS, seed=5, backend=backend,
                                      **kwargs)
            _fabric_machine(psim)
            result = psim.run()
            assert result.reason == "exhausted"
            stats = psim.stat_values()
            psim.close()
            if best is None or result.wall_seconds < best.wall_seconds:
                best = result
        return stats, best

    def run():
        serial_stats, serial_result = run_backend("serial")
        procs_stats, procs_result = run_backend(
            "processes", transport="shm", sync="adaptive")
        assert procs_stats == serial_stats
        return serial_result, procs_result

    serial_result, procs_result = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    cpus = _usable_cpus()
    speedup = serial_result.wall_seconds / procs_result.wall_seconds
    eps = (procs_result.events_executed / procs_result.wall_seconds
           if procs_result.wall_seconds else 0.0)
    append_json_record(
        Path(__file__).parent.parent / "BENCH_engine_throughput.json",
        {
            "schema": "repro-bench-record/1",
            "experiment": "engine_parallel",
            "test": "eng2_parallel_fabric_speedup",
            "kind": "parallel_fabric_speedup",
            "workload": "parallel_fabric",
            "queue": "shm",
            "transport": "shm",
            "sync": "adaptive",
            "ranks": FABRIC_RANKS,
            "components": FABRIC_COMPONENTS,
            "usable_cpus": cpus,
            "rounds": ROUNDS,
            "serial_wall_seconds": serial_result.wall_seconds,
            "processes_wall_seconds": procs_result.wall_seconds,
            "speedup": speedup,
            "events_per_second": eps,
            "epochs": procs_result.epochs,
            "exchange_bytes": procs_result.exchange_bytes,
            "lookahead_utilization": procs_result.lookahead_utilization,
            "events": procs_result.events_executed,
            "environment": environment_info(),
        },
    )
    report(f"ENG-2 parallel fabric ({FABRIC_COMPONENTS} components, "
           f"{FABRIC_RANKS} ranks, shm+adaptive): {speedup:.2f}x vs serial, "
           f"{eps:,.0f} events/s ({cpus} usable CPUs)")
    if cpus >= FABRIC_RANKS:
        assert speedup >= 3.0, (
            f"shm+adaptive fabric below the 3x target on a {cpus}-core "
            f"host: {speedup:.2f}x"
        )
