"""Fig. 11 — Power and cost efficiency with different memory systems.

Paper result: although GDDR5 wins on raw performance, DDR3's
performance-per-Watt is roughly equal to GDDR5's for wide cores and up
to 107% higher for narrow ones.  Performance-per-Dollar: DDR3 better
for narrow cores (1-2 wide on Lulesh, 1-4 on HPCCG), roughly equal
around 4-wide, losing to GDDR5 at 8-wide.

Shape assertions: DDR3's perf/W advantage is large at width 1 and
shrinks monotonically toward parity at width 8; the perf/$ ratio
crosses 1.0 between width 4 and 8 on at least one app.
"""

import pytest

from repro.analysis import ResultTable
from repro.dse import PAPER_WIDTHS, PAPER_WORKLOADS


def build_fig11_table(sweep):
    table = ResultTable(
        ["app", "width", "ddr3_perf_w", "gddr5_perf_w", "perf_w_ratio",
         "ddr3_perf_d", "gddr5_perf_d", "perf_d_ratio"],
        title="Fig. 11 — perf/Watt and perf/Dollar: DDR3-1066 vs GDDR5",
    )
    for app in PAPER_WORKLOADS:
        for width in PAPER_WIDTHS:
            ddr3 = sweep.point(app, width, "DDR3-1066")
            gddr5 = sweep.point(app, width, "GDDR5")
            table.add_row(
                app=app, width=width,
                ddr3_perf_w=ddr3.perf_per_watt / 1e9,
                gddr5_perf_w=gddr5.perf_per_watt / 1e9,
                perf_w_ratio=ddr3.perf_per_watt / gddr5.perf_per_watt,
                ddr3_perf_d=ddr3.perf_per_dollar / 1e6,
                gddr5_perf_d=gddr5.perf_per_dollar / 1e6,
                perf_d_ratio=ddr3.perf_per_dollar / gddr5.perf_per_dollar,
            )
    return table


def test_fig11_power_and_cost(benchmark, paper_sweep, report, save_csv):
    table = benchmark.pedantic(build_fig11_table, args=(paper_sweep,),
                               rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig11_power_cost")

    for app in PAPER_WORKLOADS:
        pw_ratios = []
        pd_ratios = []
        for width in PAPER_WIDTHS:
            ddr3 = paper_sweep.point(app, width, "DDR3-1066")
            gddr5 = paper_sweep.point(app, width, "GDDR5")
            pw_ratios.append(ddr3.perf_per_watt / gddr5.perf_per_watt)
            pd_ratios.append(ddr3.perf_per_dollar / gddr5.perf_per_dollar)
        # perf/W: DDR3 clearly ahead at narrow widths (paper: up to
        # +107%; we accept +40%..+120%), approaching parity at wide
        # (within 30%).
        assert 1.40 < pw_ratios[0] < 2.20, (app, pw_ratios)
        assert pw_ratios[-1] < 1.30, (app, pw_ratios)
        # ... and the advantage shrinks monotonically with width.
        assert pw_ratios == sorted(pw_ratios, reverse=True), (app, pw_ratios)
        # perf/$: DDR3 ahead at width 1.
        assert pd_ratios[0] > 1.10, (app, pd_ratios)
        # The ratio declines toward/through parity at width 8.
        assert pd_ratios[-1] < pd_ratios[0], (app, pd_ratios)
        assert pd_ratios[-1] < 1.15, (app, pd_ratios)

    # The crossover itself: at 8-wide on at least one app GDDR5 wins
    # perf/$ outright (paper: Lulesh at 8-wide, HPCCG marginal).
    crossed = [
        paper_sweep.point(app, 8, "GDDR5").perf_per_dollar
        > paper_sweep.point(app, 8, "DDR3-1066").perf_per_dollar
        for app in PAPER_WORKLOADS
    ]
    assert any(crossed), "no perf/$ crossover at 8-wide on any app"
