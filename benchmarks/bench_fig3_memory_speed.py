"""Fig. 3 — Effects of memory speed on the FEA and solver phases.

Paper result (Nehalem/Magny-Cours nodes configured at 800/1066/1333 MHz
memory): FEA phases of miniFE and Charon are *not* impacted by the
memory-speed change, their solver phases are; and miniFE stays within
4% of Charon on every measure — miniFE is predictive of Charon with
regard to on-node memory bandwidth.

Shape assertions: solver runtime rises markedly at 800 MHz, FEA barely
moves; the miniFE-vs-Charon comparison passes a (slightly relaxed) 8%
threshold via the validation framework.
"""

import pytest

from repro.analysis import ResultTable, Thresholds, ValidationStudy, Verdict
from repro.miniapps import memory_speed_response

SPEEDS = ["DDR3-800", "DDR3-1066", "DDR3-1333"]
PHASES = ("minife_fea", "charon_fea", "minife_solver", "charon_solver")


def run_fig3():
    responses = {phase: memory_speed_response(phase, SPEEDS)
                 for phase in PHASES}
    table = ResultTable(["phase"] + SPEEDS,
                        title="Fig. 3 — runtime relative to DDR3-1333")
    for phase, resp in responses.items():
        table.add_row(phase=phase, **{s: resp[s] for s in SPEEDS})
    return responses, table


def test_fig3_memory_speed(benchmark, report, save_csv):
    responses, table = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    report(table)
    save_csv(table, "fig3_memory_speed")

    for app in ("minife", "charon"):
        solver = responses[f"{app}_solver"]
        fea = responses[f"{app}_fea"]
        # Solvers slow down as memory slows; monotone in speed grade.
        assert solver["DDR3-800"] > solver["DDR3-1066"] > 1.0, app
        assert solver["DDR3-800"] > 1.20, (app, solver)
        # FEA phases are essentially unaffected (paper's key contrast).
        assert fea["DDR3-800"] < 1.10, (app, fea)
        # Normalisation sanity.
        assert solver["DDR3-1333"] == pytest.approx(1.0)
        assert fea["DDR3-1333"] == pytest.approx(1.0)

    study = ValidationStudy("fig3-memory-speed")
    study.add_series("solver", responses["charon_solver"],
                     responses["minife_solver"],
                     thresholds=Thresholds(pass_below=0.08,
                                           caution_below=0.2))
    study.add_series("fea", responses["charon_fea"],
                     responses["minife_fea"],
                     thresholds=Thresholds(pass_below=0.08,
                                           caution_below=0.2))
    report(study.report())
    assert study.summary() is Verdict.PASS
