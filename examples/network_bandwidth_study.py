#!/usr/bin/env python3
"""The §4.1 network-injection-bandwidth degradation study (Fig. 9).

Reproduces Sandia's Cray XT5 experiment: run CTH, SAGE, xNOBEL and
Charon on a simulated 3-D torus and throttle every NIC to full / half /
quarter / eighth injection bandwidth, reporting relative slowdowns —
the data that motivated "network power-performance configurability in
future systems" (Charon could run on an eighth of the network for free;
CTH cannot).

Run:  python examples/network_bandwidth_study.py [--ranks N] [--iterations K]
"""

import argparse

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine

BANDWIDTHS = ["3.2GB/s", "1.6GB/s", "0.8GB/s", "0.4GB/s"]
LABELS = ["full", "half", "quarter", "eighth"]
APPS = ["CTH", "SAGE", "XNOBEL", "Charon"]


def run_point(app: str, bandwidth: str, n_ranks: int, iterations: int):
    graph = build_app_machine(f"miniapps.{app}", n_ranks,
                              injection_bandwidth=bandwidth,
                              iterations=iterations)
    sim = build(graph, seed=7)
    result = sim.run()
    if result.reason != "exit":
        raise RuntimeError(f"{app}@{bandwidth}: {result.reason}")
    return app_runtime_stats(sim, n_ranks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=3)
    args = parser.parse_args()

    table = ResultTable(["app"] + LABELS + ["msgs_per_rank", "comm_frac_full"],
                        title=f"\nSlowdown vs full injection bandwidth "
                              f"({args.ranks} ranks, 3-D torus) — Fig. 9")
    for app in APPS:
        base = run_point(app, BANDWIDTHS[0], args.ranks, args.iterations)
        row = {"app": app,
               "msgs_per_rank": base["messages_per_rank"],
               "comm_frac_full": base["mean_comm_ps"] / base["runtime_ps"]}
        for bandwidth, label in zip(BANDWIDTHS, LABELS):
            stats = run_point(app, bandwidth, args.ranks, args.iterations)
            row[label] = stats["runtime_ps"] / base["runtime_ps"]
        table.add_row(**row)
    print(table.render())

    print("""
Reading the table like the paper does:
  * Charon barely moves: its many small messages are latency-bound, so
    its network could be run at an eighth of the power for free.
  * CTH/SAGE pay heavily: their large halo messages must complete
    before the next timestep - full bandwidth is the energy-efficient
    configuration for them.
  * xNOBEL hides communication behind computation until the messages no
    longer fit under the compute time; rerun with --ranks 128 to watch
    the overlap collapse (the paper's 'falloff past 384 cores').""")


if __name__ == "__main__":
    main()
