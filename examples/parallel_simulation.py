#!/usr/bin/env python3
"""Conservative parallel simulation of a full machine.

Demonstrates the PDES side of the toolkit: the same miniapp machine is
simulated sequentially and then partitioned across ranks with each
partition strategy, verifying that the physics agrees and reporting the
protocol metrics that determine parallel efficiency — edge cut, the
conservative lookahead (set by the smallest cut-link latency), epoch
count and cross-rank event traffic.

Run:  python examples/parallel_simulation.py [--ranks 4] [--app HPCCG]
"""

import argparse

from repro.analysis import ResultTable
from repro.config import build, build_parallel
from repro.core.partition import STRATEGIES, partition
from repro.miniapps import app_runtime_stats, build_app_machine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4,
                        help="parallel simulation ranks")
    parser.add_argument("--app", default="HPCCG")
    parser.add_argument("--app-ranks", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=3)
    args = parser.parse_args()

    def machine():
        return build_app_machine(f"miniapps.{args.app}", args.app_ranks,
                                 iterations=args.iterations)

    # -- sequential reference --------------------------------------------
    seq = build(machine(), seed=2)
    seq_result = seq.run()
    seq_runtime = app_runtime_stats(seq, args.app_ranks)["runtime_ps"]
    print(f"sequential: {seq_result.events_executed} events, "
          f"simulated app runtime {seq_runtime / 1e9:.3f} ms, "
          f"{seq_result.events_per_second:,.0f} events/s")

    # -- partition quality -------------------------------------------------
    graph = machine()
    nodes, edges, weights = graph.partition_inputs()
    quality = ResultTable(["strategy", "edge_cut", "cut_edges",
                           "min_cut_latency_ns", "imbalance"],
                          title=f"\nPartition quality ({len(nodes)} "
                                f"components over {args.ranks} ranks)")
    for strategy in STRATEGIES:
        r = partition(nodes, edges, args.ranks, strategy=strategy,
                      weights=weights)
        quality.add_row(strategy=strategy, edge_cut=r.edge_cut,
                        cut_edges=r.cut_edges,
                        min_cut_latency_ns=(r.min_cut_latency or 0) / 1000,
                        imbalance=r.imbalance)
    print(quality.render())

    # -- parallel runs -----------------------------------------------------
    protocol = ResultTable(["strategy", "epochs", "remote_events",
                            "lookahead_ns", "app_runtime_ms", "agrees"],
                           title="\nConservative parallel runs")
    for strategy in STRATEGIES:
        psim = build_parallel(machine(), args.ranks, strategy=strategy,
                              seed=2)
        result = psim.run()
        runtime = max(psim.stat_values()[f"rank{i}.runtime_ps"]
                      for i in range(args.app_ranks))
        protocol.add_row(strategy=strategy, epochs=result.epochs,
                         remote_events=result.remote_events,
                         lookahead_ns=result.lookahead / 1000,
                         app_runtime_ms=runtime / 1e9,
                         agrees=abs(runtime - seq_runtime) / seq_runtime < 0.02)
    print(protocol.render())
    print("""
Locality-aware partitions (bfs/kl) cut fewer links than round_robin, so
fewer events cross ranks each epoch.  The lookahead — how far every
rank may safely run ahead — equals the smallest latency of any cut
link, which is why SST insists every component boundary carries real
latency.""")


if __name__ == "__main__":
    main()
