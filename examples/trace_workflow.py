#!/usr/bin/env python3
"""Trace-driven simulation workflow.

Shows the record/replay loop that carries a workload's memory behaviour
between tools:

1. synthesise a reference stream matching a workload's locality profile
   and record it to a (gzip) trace file;
2. replay the trace through an event-driven cache + memory-controller
   machine and read the hit rates back;
3. sweep a cache parameter (prefetch depth) over the *same* trace —
   the reproducibility benefit traces buy.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.analysis import ResultTable
from repro.config import ConfigGraph, build
from repro.processor import TraceSpec, read_trace, record_trace, workload


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pysst-trace-"))
    trace_path = workdir / "minife_fea.trace.gz"

    # -- 1. record ---------------------------------------------------------
    spec = TraceSpec.for_workload(workload("minife_fea"), seed=11)
    n_records = record_trace(spec, 20_000, trace_path, size=8)
    size_kb = trace_path.stat().st_size / 1024
    print(f"recorded {n_records} references to {trace_path.name} "
          f"({size_kb:.0f} KiB gzipped)")
    first = next(iter(read_trace(trace_path)))
    print(f"first record: addr=0x{first[0]:x} write={first[1]} "
          f"size={first[2]}")

    # -- 2/3. replay under a prefetch-depth sweep ---------------------------
    table = ResultTable(["prefetch_depth", "l1_hit_rate", "runtime_us",
                         "prefetch_hits"],
                        title="\nreplaying the same trace under a cache sweep")
    for depth in (0, 2, 4):
        graph = ConfigGraph(f"replay-d{depth}")
        graph.component("cpu", "processor.TraceReplayCore",
                        {"trace": str(trace_path), "outstanding": 4})
        graph.component("l1", "memory.Cache",
                        {"size": "32KB", "ways": 8, "prefetch": depth})
        graph.component("mem", "memory.MemController",
                        {"technology": "DDR3-1333"})
        graph.link("cpu", "mem", "l1", "cpu", latency="1ns")
        graph.link("l1", "mem", "mem", "cpu", latency="2ns")
        sim = build(graph, seed=1)
        result = sim.run()
        assert result.reason == "exit"
        values = sim.stat_values()
        hits, misses = values["l1.hits"], values["l1.misses"]
        table.add_row(prefetch_depth=depth,
                      l1_hit_rate=hits / (hits + misses),
                      runtime_us=values["cpu.runtime_ps"] / 1e6,
                      prefetch_hits=values["l1.prefetch_hits"])
    print(table.render())
    print("\nSame input stream, different machines — the point of "
          "trace-driven simulation.  (This trace is mostly cache-resident "
          "FEA traffic, so stream prefetching has little left to win; try "
          "swapping in workload('hpccg') above.)")


if __name__ == "__main__":
    main()
