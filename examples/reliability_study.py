#!/usr/bin/env python3
"""Exascale reliability studies: checkpointing, SSDs, heat and noise.

Chains the extension models that hang off the paper's §3.1 (per-node
SSDs "enabling us to study local checkpointing strategies"), §4
(OS-noise injection) and §5 (temperature as an objective function):

1. the Daly checkpoint-interval sweep, simulated vs analytic;
2. local-SSD vs shared-parallel-filesystem checkpoint targets by scale;
3. the thermal chain: socket power -> junction temperature -> leakage
   -> Arrhenius-derated MTBF -> resilience overhead;
4. OS-noise signatures: same net noise, very different damage.

Run:  python examples/reliability_study.py
"""

from repro.analysis import ResultTable
from repro.config import build
from repro.miniapps import app_runtime_stats, build_app_machine
from repro.power import CorePowerModel, ThermalModel, ThermalParams
from repro.resilience import (LOCAL_SSD, PARALLEL_FS, FailureModel,
                              daly_interval_s, expected_runtime_s,
                              simulate_job)


def part1_interval_sweep() -> None:
    print("=" * 72)
    print("1. Checkpoint-interval sweep (simulated vs Daly's model)")
    print("=" * 72)
    mtbf, delta, restart, work = 200.0, 5.0, 10.0, 800.0
    optimum = daly_interval_s(delta, mtbf)
    table = ResultTable(["interval_s", "analytic_s", "simulated_s"],
                        title=f"\nMTBF {mtbf:.0f}s, checkpoint {delta:.0f}s "
                              f"-> Daly optimum {optimum:.1f}s")
    for factor in (0.25, 1.0, 4.0):
        interval = optimum * factor
        analytic = expected_runtime_s(work, interval, delta, restart, mtbf)
        jobs = [simulate_job(work_s=work, interval_s=interval,
                             checkpoint_s=delta, restart_s=restart,
                             mtbf_s=mtbf, seed=s) for s in range(8)]
        simulated = sum(j.runtime_ps for j in jobs) / len(jobs) / 1e12
        table.add_row(interval_s=interval, analytic_s=analytic,
                      simulated_s=simulated)
    print(table.render())


def part2_checkpoint_targets() -> None:
    print()
    print("=" * 72)
    print("2. Where to checkpoint: node SSDs vs the parallel filesystem")
    print("=" * 72)
    state = 2 * 10**9
    table = ResultTable(["nodes", "ssd_runtime_s", "pfs_runtime_s", "winner"],
                        title="\nexpected runtime of a 500s job, 2GB/node "
                              "checkpoints")
    for n_nodes in (16, 128, 1024):
        mtbf = FailureModel(25_000.0, n_nodes).system_mtbf_s
        runtimes = {}
        for target in (LOCAL_SSD, PARALLEL_FS):
            delta = target.checkpoint_time_ps(state, n_nodes) / 1e12
            interval = daly_interval_s(delta, mtbf)
            runtimes[target.name] = expected_runtime_s(500.0, interval,
                                                       delta, 10.0, mtbf)
        table.add_row(nodes=n_nodes,
                      ssd_runtime_s=runtimes["local-ssd"],
                      pfs_runtime_s=runtimes["parallel-fs"],
                      winner=min(runtimes, key=runtimes.get))
    print(table.render())
    print("\nThe shared filesystem's aggregate bandwidth divides across "
          "nodes; per-node SSDs do not — local checkpointing wins at "
          "scale (the §3.1 motivation).")


def part3_thermal_chain() -> None:
    print()
    print("=" * 72)
    print("3. Heat -> leakage -> reliability (the §5 objective functions)")
    print("=" * 72)
    thermal = ThermalModel(ThermalParams(r_thermal_c_per_w=1.1,
                                         leakage_ref_w=1.5,
                                         leakage_beta=0.025))
    table = ResultTable(["width", "socket_w", "temp_c", "mtbf_derate",
                         "resilience_overhead"],
                        title="\n16-core socket running Lulesh, 512 nodes")
    for width in (1, 4, 8):
        dynamic = CorePowerModel(width).dynamic_power_w(1.6e9) * 16 + 10
        op = thermal.steady_state(dynamic)
        node_mtbf = thermal.derated_mtbf_s(300_000.0, op.temperature_c)
        mtbf = FailureModel(node_mtbf, 512).system_mtbf_s
        interval = daly_interval_s(8.0, mtbf)
        overhead = expected_runtime_s(5000.0, interval, 8.0, 15.0,
                                      mtbf) / 5000.0 - 1.0
        table.add_row(width=width, socket_w=op.total_power_w,
                      temp_c=op.temperature_c,
                      mtbf_derate=300_000.0 / node_mtbf,
                      resilience_overhead=overhead)
    print(table.render())


def part4_noise() -> None:
    print()
    print("=" * 72)
    print("4. OS-noise signatures (the §4 injection study)")
    print("=" * 72)

    def slowdown(noise):
        def run(extra):
            graph = build_app_machine("miniapps.HPCCG", 32,
                                      app_params=extra, iterations=5)
            sim = build(graph, seed=11)
            assert sim.run().reason == "exit"
            return app_runtime_stats(sim, 32)["runtime_ps"]

        return run(noise) / run({}) - 1.0

    table = ResultTable(["signature", "net_injected", "slowdown"],
                        title="\nHPCCG (fine-grained collectives), 32 ranks")
    table.add_row(signature="2500Hz x 10us", net_injected="2.5%",
                  slowdown=slowdown({"noise_frequency": 2500,
                                     "noise_duration": "10us"}))
    table.add_row(signature="10Hz x 2.5ms", net_injected="2.5%",
                  slowdown=slowdown({"noise_frequency": 10,
                                     "noise_duration": "2.5ms"}))
    print(table.render())
    print("\nIdentical net noise, wildly different damage: collectives "
          "wait for the unluckiest rank, so rare-long detours amplify "
          "while frequent-tiny ones are absorbed.")


if __name__ == "__main__":
    part1_interval_sweep()
    part2_checkpoint_targets()
    part3_thermal_chain()
    part4_noise()
