#!/usr/bin/env python3
"""MSI snooping coherence: sharing patterns and their costs.

Walks the protocol through its characteristic situations and then
measures the component-level cost of the pathology every performance
guide warns about — false sharing:

1. protocol transitions, narrated (read-share, upgrade, steal, flush);
2. a two-core machine where both cores hammer one cache line vs each
   hammering its own line;
3. the producer/consumer pattern: cache-to-cache transfers vs memory.

Run:  python examples/coherence_study.py
"""

from repro.analysis import ResultTable
from repro.core import Params, Simulation
from repro.memory import SnoopBus
from repro.memory.coherence import CoherentBusComponent, CoherentCache


def part1_protocol_walkthrough() -> None:
    print("=" * 72)
    print("1. MSI transitions on the functional protocol core")
    print("=" * 72)
    bus = SnoopBus(n_caches=2, capacity_lines=16)
    line = 0x1000

    def show(step):
        states = "/".join(bus.state_of(i, line).value for i in range(2))
        print(f"  {step:<46} states(c0/c1) = {states}")

    bus.read(0, line)
    show("c0 reads (BusRd, memory supplies)")
    bus.read(1, line)
    show("c1 reads (shared copy)")
    bus.write(0, line)
    show("c0 writes (BusUpgr: c1 invalidated)")
    bus.read(1, line)
    show("c1 reads back (c0 flushes, both Shared)")
    bus.write(1, line)
    show("c1 writes (BusRdX steals ownership)")
    s = bus.stats
    print(f"  totals: {s.bus_transactions} bus transactions, "
          f"{s.invalidations} invalidations, "
          f"{s.cache_to_cache} cache-to-cache transfers")


def _two_core_machine():
    sim = Simulation(seed=5)
    bus = CoherentBusComponent(sim, "bus", Params({
        "n_caches": 2, "capacity_lines": 64}))
    caches = []
    for i in range(2):
        cache = CoherentCache(sim, f"l1_{i}", Params({"cache_id": i}))
        sim.connect(cache, "bus", bus, f"cache{i}", latency="1ns")
        caches.append(cache)
    return sim, bus, caches


def part2_false_sharing() -> None:
    print()
    print("=" * 72)
    print("2. False sharing, measured")
    print("=" * 72)
    from repro.processor import TrafficGenerator

    def run(same_line: bool):
        sim, bus, caches = _two_core_machine()
        for i in range(2):
            # stride 0 hammers one address; the base offset decides
            # whether the two cores collide on one line or not.
            cpu = TrafficGenerator(sim, f"cpu{i}", Params({
                "requests": 128, "pattern": "stream", "stride": 0,
                "footprint": "64", "base": 0 if same_line else i * 4096,
                "outstanding": 1, "write_fraction": 1.0}))
            sim.connect(cpu, "mem", caches[i], "cpu", latency="1ns")
        sim.run()
        values = sim.stat_values()
        return (max(values[f"cpu{i}.runtime_ps"] for i in range(2)),
                values["bus.invalidations"])

    table = ResultTable(["scenario", "runtime_us", "invalidations"],
                        title="\ntwo writers, 128 writes each")
    for same_line, label in ((True, "same line (false sharing)"),
                             (False, "disjoint lines")):
        runtime, invalidations = run(same_line)
        table.add_row(scenario=label, runtime_us=runtime / 1e6,
                      invalidations=invalidations)
    print(table.render())
    print("\nSame work, ~5x the time: every write steals the line back "
          "and invalidates the other core's copy.")


def part3_producer_consumer() -> None:
    print()
    print("=" * 72)
    print("3. Producer/consumer: where the data comes from")
    print("=" * 72)
    sim, bus, caches = _two_core_machine()
    sim.setup()
    protocol = bus.protocol
    line = 0x4000
    # Producer (cache 0) writes; consumer (cache 1) reads.
    for _ in range(16):
        protocol.write(0, line)
        outcome = protocol.read(1, line)
    s = protocol.stats
    print(f"  16 produce/consume rounds on one line:")
    print(f"  cache-to-cache transfers: {s.cache_to_cache} "
          "(the consumer gets its data from the producer's cache,")
    print(f"  memory fetches:           {s.memory_fetches} "
          " not from DRAM - the latency the c2c path saves)")


if __name__ == "__main__":
    part1_protocol_walkthrough()
    part2_false_sharing()
    part3_producer_consumer()
