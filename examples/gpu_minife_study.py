#!/usr/bin/env python3
"""The §3.4 miniFE CUDA study (Fig. 8): register spilling on a GPU.

Walks through the paper's analysis with the analytic SIMT model:

1. the per-thread state budget of the FE-assembly kernel vs the Fermi
   register file (63 regs = 252 B) and the L1/L2 share per thread;
2. the resulting spill traffic and why it makes a FLOP-heavy kernel
   bandwidth-bound;
3. the tuning steps (operator symmetry, load-late reordering, source
   vector to shared memory) and what they recover;
4. the three-phase GPU-vs-CPU speedup table (assembly ~4x, solve ~3x,
   structure generation a slowdown);
5. the "future hardware" what-if: a Kepler-like device with 255
   registers/thread eliminates the spill entirely.

Run:  python examples/gpu_minife_study.py [--n 64]
"""

import argparse

from repro.analysis import ResultTable
from repro.miniapps import (FEA_KERNEL_NAIVE, FEA_KERNEL_TUNED,
                            MiniFEGpuStudy)
from repro.processor import FERMI_M2090, KEPLER_LIKE, GpuTimingModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64,
                        help="problem size: n^3 hexahedral elements")
    args = parser.parse_args()

    gpu = GpuTimingModel(FERMI_M2090)
    study = MiniFEGpuStudy(args.n)

    # -- 1/2: the state budget --------------------------------------------
    print("Per-thread state accounting (FE assembly kernel):")
    print(f"  live state:         {FEA_KERNEL_NAIVE.state_bytes_per_thread} B "
          "(node IDs + coords + diffusion matrix + source + Jacobian)")
    print(f"  register budget:    {FERMI_M2090.register_budget_bytes} B "
          f"({FERMI_M2090.max_registers_per_thread} x 32-bit registers)")
    naive = study.fea_estimate(tuned=False)
    print(f"  spilled (naive):    {naive.spill_bytes_per_thread} B/thread")
    print(f"  L1+L2 share:        "
          f"{gpu.cache_share_per_thread(naive.occupancy_threads_per_sm)} B/thread "
          f"at {naive.occupancy_threads_per_sm} resident threads/SM")
    print(f"  -> bandwidth-bound: {naive.bandwidth_bound} "
          f"(spill traffic {naive.spill_traffic_bytes / 1e6:.0f} MB per launch)")

    # -- 3: tuning ----------------------------------------------------------
    tuned = study.fea_estimate(tuned=True)
    print("\nAfter the paper's tuning (symmetry, reordering, source vector "
          "to shared memory):")
    print(f"  spilled (tuned):    {tuned.spill_bytes_per_thread} B/thread "
          f"(paper: ~512 B still spilled)")
    print(f"  runtime recovered:  {naive.runtime_s / tuned.runtime_s:.2f}x")

    # -- 4: the Fig. 8 table -------------------------------------------------
    table = ResultTable(["phase", "cpu_ms", "gpu_ms", "speedup"],
                        title=f"\nFig. 8 — phase speedups, N={args.n}^3 "
                              "elements (M2090 vs hex-core E5-2680)")
    for name, cmp in study.table().items():
        table.add_row(phase=name, cpu_ms=cmp.cpu_time_s * 1e3,
                      gpu_ms=cmp.gpu_time_s * 1e3, speedup=cmp.speedup)
    print(table.render())
    print("\nStructure generation is a *slowdown*: it is built on the host "
          "in CSR, shipped over PCIe, and converted to ELL on the device — "
          "low priority to fix given its share of total runtime (paper).")

    # -- 5: future hardware ---------------------------------------------------
    kepler = MiniFEGpuStudy(args.n, gpu=KEPLER_LIKE)
    k_est = kepler.fea_estimate()
    print(f"\nKepler-like what-if ({KEPLER_LIKE.max_registers_per_thread} "
          f"registers/thread, bigger L1/L2):")
    print(f"  spilled:            {k_est.spill_bytes_per_thread} B/thread")
    print(f"  FEA speedup:        {kepler.fea().speedup:.1f}x "
          f"(vs {study.fea().speedup:.1f}x on Fermi)")
    print("  — 'future generations of NVIDIA systems are expected to "
          "address some of the findings from this study.'")


if __name__ == "__main__":
    main()
