#!/usr/bin/env python3
"""The §2.2 miniapp-validation methodology, executed end to end.

"Under what conditions does a miniapp represent a key performance
characteristic in a full app?"  This example runs the paper's three
on-node diagnostics for miniFE vs Charon — cores-per-node contention
(Fig. 2), memory-speed sensitivity (Fig. 3) and cache behaviour
(Fig. 4) — and pushes each through the Eq. (4)/(5) validation-metric
framework, reproducing the paper's verdict pattern:

  * memory bandwidth (Figs. 2-3):  PASS  (miniFE predictive)
  * FEA cache behaviour (Fig. 4):  FAIL  (L2/L3 diverge 3-6x)
  * solver cache behaviour:        PASS  (within ~20% thresholds)

Run:  python examples/miniapp_validation.py
"""

from repro.analysis import Thresholds, ValidationStudy
from repro.miniapps import (cache_hit_rates, cores_per_node_efficiency,
                            memory_speed_response)


def study_cores_per_node() -> ValidationStudy:
    cores = [1, 2, 4, 8, 12]
    node = dict(channels=4, issue_width=4, freq_hz=2.4e9)
    charon = cores_per_node_efficiency("charon_solver", cores, **node)
    minife = cores_per_node_efficiency("minife_solver", cores, **node)
    study = ValidationStudy("Fig.2 cores-per-node (solver efficiency)")
    study.add_series("efficiency", charon, minife,
                     thresholds=Thresholds(pass_below=0.13,
                                           caution_below=0.25))
    return study


def study_memory_speed() -> ValidationStudy:
    speeds = ["DDR3-800", "DDR3-1066", "DDR3-1333"]
    study = ValidationStudy("Fig.3 memory-speed response")
    for phase in ("solver", "fea"):
        charon = memory_speed_response(f"charon_{phase}", speeds)
        minife = memory_speed_response(f"minife_{phase}", speeds)
        study.add_series(phase, charon, minife,
                         thresholds=Thresholds(pass_below=0.08,
                                               caution_below=0.2))
    return study


def study_cache(phase: str, thresholds: Thresholds) -> ValidationStudy:
    charon = cache_hit_rates(f"charon_{phase}")
    minife = cache_hit_rates(f"minife_{phase}")
    study = ValidationStudy(f"Fig.4 cache behaviour ({phase.upper()})")
    study.add_series("hit_rate", charon, minife, thresholds=thresholds)
    return study


def main() -> None:
    studies = [
        study_cores_per_node(),
        study_memory_speed(),
        study_cache("fea", Thresholds(pass_below=0.05, caution_below=0.25)),
        study_cache("solver", Thresholds(pass_below=0.20, caution_below=0.30)),
    ]
    for study in studies:
        print()
        print(study.report())

    print("\n" + "=" * 72)
    print("Body of evidence (cf. paper §2.2 conclusions):")
    for study in studies:
        print(f"  {study.name:<44} {study.summary()}")
    print("""
miniFE is predictive of Charon for on-node memory bandwidth (the
Figs. 2-3 PASSes) and for solver-phase cache behaviour, but NOT for
FEA-phase L2/L3 cache behaviour — exactly the paper's assessment, and
the reason validation must be per-characteristic, not per-miniapp.""")


if __name__ == "__main__":
    main()
