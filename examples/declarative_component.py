"""A complete custom component in under 60 lines (declarative API).

``Meter`` forwards memory traffic while counting it.  Declaring ports,
state and statistics is *all* it does: graph-build port validation,
engine checkpoint/restore and telemetry gauges are auto-wired.
Run:  PYTHONPATH=src python examples/declarative_component.py
"""
import tempfile
from pathlib import Path
from repro.ckpt import restore, snapshot
from repro.config import ConfigGraph, build
from repro.core import Component, port, stat, state
from repro.core.registry import register
from repro.memory.events import MemRequest, MemResponse


@register("examples.Meter")
class Meter(Component):
    """Forwards cpu<->mem traffic, counting requests and bytes."""

    cpu = port("requests in from the core", event=MemRequest)
    mem = port("responses back from memory", event=MemResponse)

    _inflight = state(0, gauge=True, doc="requests currently downstream")

    s_requests = stat.counter(doc="requests forwarded")
    s_bytes = stat.counter(doc="payload bytes forwarded")

    def on_cpu(self, event):
        self._inflight += 1
        self.s_requests.add()
        self.s_bytes.add(event.size)
        self.send("mem", event)

    def on_mem(self, event):
        self._inflight -= 1
        self.send("cpu", event)


def machine() -> ConfigGraph:
    g = ConfigGraph("declarative-demo")
    g.component("cpu", "processor.TrafficGenerator",
                {"requests": 2000, "pattern": "random", "footprint": "1MB"})
    g.component("meter", "examples.Meter", {})
    g.component("mem", "memory.SimpleMemory", {"latency": "40ns"})
    g.link("cpu", "mem", "meter", "cpu", latency="1ns")
    g.link("meter", "mem", "mem", "cpu", latency="2ns")
    return g


cold = build(machine(), seed=7, validate_events=True)  # ports checked here
end = cold.run().end_time
warm = build(machine(), seed=7)
warm.run(max_time=end // 2, finalize=False)
with tempfile.TemporaryDirectory() as tmp:  # snapshot for free, mid-run
    resumed = restore(snapshot(warm, Path(tmp) / "snap"))
    print("gauges mid-run:", resumed._components["meter"].telemetry_gauges())
    resumed.run()
assert resumed.stat_values() == cold.stat_values(), "restore diverged"
print("stats:", {k: v for k, v in cold.stat_values().items() if "meter" in k})
