#!/usr/bin/env python3
"""Scheduling-policy ablation on a simulated HPC cluster.

The simulated system here is itself a service under load: a batch
scheduler absorbing bursty job-arrival floods.  The scheduling policy
is a *subcomponent slot* on ``cluster.Scheduler`` — this study swaps
FCFS, EASY backfill and priority order purely by changing the
``policy`` param (no component classes are touched), the ablation axis
coming straight from the declared slot via
:func:`repro.sweep_axes`.

Under bursty arrivals a wide job at the queue head strands free nodes
in plain FCFS; EASY backfill slips small jobs into the hole without
delaying the head's reservation, so it finishes the same trace with
strictly higher utilization and a shorter makespan.

Run:
    python examples/cluster_scheduling.py --jobs 100000
    python examples/cluster_scheduling.py --jobs 1000000        # full study
    python examples/cluster_scheduling.py --policy backfill --ranks 2 \\
        --backend processes --manifest run-manifest.json
"""

import argparse
import json

from repro import sweep_axes
from repro.analysis import ResultTable
from repro.cluster import Scheduler
from repro.config import ConfigGraph, build, build_parallel
from repro.obs import build_manifest, write_manifest

#: CLI short names for the slot's registered policy types.
SHORT = {"cluster.FCFS": "fcfs", "cluster.EASYBackfill": "backfill",
         "cluster.Priority": "priority"}
BY_SHORT = {v: k for k, v in SHORT.items()}


def make_graph(args, policy: str) -> ConfigGraph:
    """The cluster under test: source -> scheduler -> pool, SLO tap.

    Arrivals come in bursts (``burst_size`` simultaneous submissions)
    so the pending-event set floods the way fabric benches never do,
    and the queue is deep enough for policies to actually differ.
    """
    g = ConfigGraph(f"cluster-{SHORT[policy]}")
    g.component("src", "cluster.JobSource", {
        "mode": args.mode, "jobs": args.jobs, "trace": args.trace,
        "burst_size": args.burst_size, "burst_gap": args.burst_gap,
        "mean_interarrival": args.mean_interarrival,
        "mean_runtime": args.mean_runtime,
        "max_nodes": max(1, args.nodes // 4), "window": 32,
    }, rank=1 if args.ranks > 1 else None)
    g.component("sched", "cluster.Scheduler",
                {"nodes": args.nodes, "policy": policy}, rank=0)
    g.component("pool", "cluster.NodePool",
                {"nodes": args.nodes, "topology": "torus"}, rank=0)
    g.component("slo", "cluster.SLOStats", {"capacity": args.nodes},
                rank=1 if args.ranks > 1 else None)
    g.link("src", "out", "sched", "submit", latency=args.latency)
    g.link("sched", "pool", "pool", "sched", latency="100ns")
    g.link("sched", "report", "slo", "report", latency=args.latency)
    return g


def run_policy(args, policy: str):
    graph = make_graph(args, policy)
    if args.ranks > 1:
        sim = build_parallel(graph, args.ranks, backend=args.backend,
                             seed=args.seed)
        result = sim.run()
    else:
        sim = build(graph, seed=args.seed)
        result = sim.run(checkpoint_every=args.checkpoint_every,
                         checkpoint_dir=args.checkpoint_dir)
    manifest = build_manifest(sim, result, graph=graph,
                              invocation=vars(args))
    return result, manifest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="all",
                        choices=["all"] + sorted(BY_SHORT),
                        help="scheduling policy (all = ablation)")
    parser.add_argument("--jobs", type=int, default=1_000_000,
                        help="jobs in the arrival trace")
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--mode", default="burst",
                        choices=["poisson", "burst", "trace"])
    parser.add_argument("--trace", default="",
                        help="SWF-style trace path (mode=trace)")
    parser.add_argument("--burst-size", type=int, default=64)
    parser.add_argument("--burst-gap", default="220ms")
    parser.add_argument("--mean-interarrival", default="3ms")
    parser.add_argument("--mean-runtime", default="20ms")
    parser.add_argument("--latency", default="1ms",
                        help="submit/report link latency (bounds the "
                             "parallel lookahead)")
    parser.add_argument("--ranks", type=int, default=1)
    parser.add_argument("--backend", default="processes",
                        choices=["serial", "threads", "processes"])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--checkpoint-every", default=None,
                        help="snapshot interval for long runs, e.g. 30s "
                             "(sequential only)")
    parser.add_argument("--checkpoint-dir", default="cluster-ckpts")
    parser.add_argument("--manifest", default=None,
                        help="write the (last) run's manifest JSON here")
    args = parser.parse_args()

    # The ablation axis comes from the Scheduler's declared slot.
    axes = sweep_axes(Scheduler)
    if args.policy == "all":
        policies = list(axes["policy"])
    else:
        policies = [BY_SHORT[args.policy]]
    print(f"policy axis (from sweep_axes(Scheduler)): "
          f"{[SHORT[p] for p in axes['policy']]}")
    print(f"running {len(policies)} polic{'ies' if len(policies) > 1 else 'y'}"
          f" x {args.jobs:,} jobs on {args.nodes} nodes "
          f"({args.ranks} rank(s))\n")

    table = ResultTable(["policy", "jobs", "utilization", "mean_wait_s",
                         "p95_slowdown", "makespan_s", "events_per_s"],
                        title="Scheduling-policy ablation")
    manifest = None
    for policy in policies:
        result, manifest = run_policy(args, policy)
        slo = manifest["summary"]["slo"]
        table.add_row(policy=SHORT[policy], jobs=slo["jobs"],
                      utilization=round(slo["utilization"], 4),
                      mean_wait_s=round(slo["mean_wait_s"], 4),
                      p95_slowdown=round(slo["p95_bounded_slowdown"], 2),
                      makespan_s=round(slo["makespan_s"], 3),
                      events_per_s=f"{result.events_per_second:,.0f}")
        print(f"  {SHORT[policy]}: done in {result.wall_seconds:.1f}s wall")
    print()
    print(table.render())

    if args.manifest:
        path = write_manifest(manifest, args.manifest)
        print(f"\nmanifest written to {path}")
    if len(policies) > 1:
        print("""
Backfill's gain is structural: whenever the FCFS head is too wide for
the free nodes, EASY computes the head's reservation from runtime
*estimates* and launches any queued job that fits in the hole without
pushing that reservation back — idle node-time becomes useful work, so
utilization rises and the same trace finishes sooner.""")


if __name__ == "__main__":
    main()
