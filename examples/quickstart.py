#!/usr/bin/env python3
"""PySST quickstart: declare a machine, simulate it, read the statistics.

Builds the smallest interesting machine — a traffic-generating core
behind an L1 cache, a bandwidth-shared bus and a DDR3 memory
controller — two ways:

1. through the Python configuration layer (a ConfigGraph, SST's
   python-input style), and
2. the same design swept across two memory technologies using the
   abstract MixCore processor model, showing the design-space workflow
   everything else in this repository builds on.

Run:  python examples/quickstart.py
"""

from repro.analysis import ResultTable
from repro.config import ConfigGraph, build, to_json


def part1_event_driven_node() -> None:
    print("=" * 72)
    print("Part 1 — an event-driven node through the config layer")
    print("=" * 72)

    g = ConfigGraph("quickstart-node")
    g.component("cpu", "processor.TrafficGenerator", {
        "requests": 2000,
        "pattern": "random",
        "footprint": "1MB",
        "outstanding": 8,
    })
    g.component("l1", "memory.Cache", {
        "size": "32KB", "ways": 8, "hit_latency": "1ns", "level": "L1",
    })
    g.component("ctrl", "memory.MemController", {
        "technology": "DDR3-1333", "policy": "frfcfs",
    })
    g.link("cpu", "mem", "l1", "cpu", latency="500ps")
    g.link("l1", "mem", "ctrl", "cpu", latency="2ns")

    warnings = g.validate(resolve_types=True)
    assert not warnings, warnings

    sim = build(g, seed=42)
    result = sim.run()

    print(f"\nrun: {result.reason} after {result.end_time / 1e6:.1f} us "
          f"simulated, {result.events_executed} events "
          f"({result.events_per_second:,.0f} events/s)\n")
    print(sim.stat_table())

    values = sim.stat_values()
    hit_rate = values["l1.hits"] / (values["l1.hits"] + values["l1.misses"])
    print(f"\nL1 hit rate: {hit_rate:.1%}; "
          f"mean memory latency: "
          f"{sim.stats()['cpu.latency_ps'].mean / 1000:.1f} ns")

    print("\nThe same machine serializes to a JSON config "
          f"({len(to_json(g))} bytes) — see examples of reloading in "
          "tests/integration/test_full_machine.py.")


def part2_design_points() -> None:
    print()
    print("=" * 72)
    print("Part 2 — abstract-core design points (the SST workflow)")
    print("=" * 72)
    from repro.dse import run_design_point

    table = ResultTable(["technology", "runtime_us", "gips", "power_w",
                         "perf_per_watt"],
                        title="\nHPCCG, 4-wide core, one design point per "
                              "memory technology")
    for technology in ("DDR3-1333", "GDDR5"):
        point = run_design_point("hpccg", issue_width=4,
                                 technology=technology,
                                 instructions=2_000_000)
        table.add_row(technology=technology,
                      runtime_us=point.runtime_ps / 1e6,
                      gips=point.performance / 1e9,
                      power_w=point.total_power_w,
                      perf_per_watt=point.perf_per_watt / 1e9)
    print(table.render())
    print("\nGDDR5 is faster but burns more power — the Fig. 10/11 "
          "trade-off.  Run examples/design_space_sweep.py for the full "
          "grid.")


if __name__ == "__main__":
    part1_event_driven_node()
    part2_design_points()
