#!/usr/bin/env python3
"""The paper's §5.2.1 design-space exploration, end to end.

Sweeps memory technology (DDR2 / DDR3 / GDDR5) x processor issue width
(1 / 2 / 4 / 8) for the HPCCG and Lulesh miniapps; every point is a
discrete-event simulation evaluated through the McPAT-lite power model
and the wafer-economics cost model.  Prints the Figs. 10-12 tables and
the co-design conclusions the paper draws from them ("the fastest
memory technology is not always the best").

Run:  python examples/design_space_sweep.py [--instructions N]
"""

import argparse

from repro.analysis import ResultTable
from repro.dse import (PAPER_TECHNOLOGIES, PAPER_WIDTHS, PAPER_WORKLOADS,
                       sweep)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instructions", type=int, default=2_000_000,
                        help="instructions per design point")
    args = parser.parse_args()

    print(f"running {len(PAPER_WORKLOADS) * len(PAPER_WIDTHS) * len(PAPER_TECHNOLOGIES)} "
          "design-point simulations ...")
    grid = sweep(instructions=args.instructions)

    # -- Fig. 10: raw performance ---------------------------------------
    perf = ResultTable(["app", "width"] + list(PAPER_TECHNOLOGIES),
                       title="\nPerformance (GIPS) — Fig. 10")
    for app in PAPER_WORKLOADS:
        for width in PAPER_WIDTHS:
            perf.add_row(app=app, width=width, **{
                t: grid.point(app, width, t).performance / 1e9
                for t in PAPER_TECHNOLOGIES
            })
    print(perf.render())

    # -- Fig. 11: efficiency --------------------------------------------
    eff = ResultTable(["app", "width", "ddr3_perf_w", "gddr5_perf_w",
                       "ddr3_perf_$", "gddr5_perf_$"],
                      title="\nEfficiency — Fig. 11 (perf/W in GIPS/W, "
                            "perf/$ in MIPS/$)")
    for app in PAPER_WORKLOADS:
        for width in PAPER_WIDTHS:
            ddr3 = grid.point(app, width, "DDR3-1066")
            gddr5 = grid.point(app, width, "GDDR5")
            eff.add_row(app=app, width=width,
                        ddr3_perf_w=ddr3.perf_per_watt / 1e9,
                        gddr5_perf_w=gddr5.perf_per_watt / 1e9,
                        **{"ddr3_perf_$": ddr3.perf_per_dollar / 1e6,
                           "gddr5_perf_$": gddr5.perf_per_dollar / 1e6})
    print(eff.render())

    # -- conclusions -----------------------------------------------------
    print("\nCo-design conclusions (cf. paper §5.2.2):")
    for app in PAPER_WORKLOADS:
        fastest = grid.best("performance", app)
        per_watt = grid.best("perf_per_watt", app)
        per_dollar = grid.best("perf_per_dollar", app)
        print(f"  {app}:")
        print(f"    fastest point:        {fastest.name} "
              f"({fastest.performance / 1e9:.2f} GIPS)")
        print(f"    most power-efficient: {per_watt.name} "
              f"({per_watt.perf_per_watt / 1e9:.3f} GIPS/W)")
        print(f"    most cost-efficient:  {per_dollar.name} "
              f"({per_dollar.perf_per_dollar / 1e6:.1f} MIPS/$)")
    print("\nNote how the winners differ per objective: there is no single "
          "'best' processor or memory — the paper's central point about "
          "why co-design needs simulation.")


if __name__ == "__main__":
    main()
